//! Property-based tests of the simulator's conservation and timing
//! invariants.

use proptest::prelude::*;
use std::sync::Arc;
use tsch_sim::{
    Cell, Direction, Link, NetworkSchedule, NodeId, Packet, Rate, SimulatorBuilder,
    SlotframeConfig, Task, TaskId, Tree,
};

fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Tree> {
    prop::collection::vec(0..1_000_000u32, 1..max_nodes).prop_map(|choices| {
        let mut pairs = Vec::with_capacity(choices.len());
        for (i, c) in choices.iter().enumerate() {
            pairs.push(((i + 1) as u16, (c % (i as u32 + 1)) as u16));
        }
        Tree::from_parents(&pairs)
    })
}

/// A collision-free uplink schedule: every link gets one dedicated cell,
/// scheduled deepest-first (compliant order), cells enumerated across
/// channels.
fn chain_schedule(tree: &Tree, config: SlotframeConfig) -> NetworkSchedule {
    let mut schedule = NetworkSchedule::new(config);
    let mut links = tree.links(Direction::Up);
    links.sort_by_key(|&l| std::cmp::Reverse(tree.layer_of_link(l)));
    for (i, link) in links.into_iter().enumerate() {
        let slot = (i as u32) % config.slots;
        let channel = ((i as u32) / config.slots) as u16;
        schedule
            .assign(Cell::new(slot, channel % config.channels), link)
            .expect("distinct cells");
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packet_conservation(tree in tree_strategy(16), frames in 1u64..6) {
        // generated = delivered + queued + dropped, always.
        let config = SlotframeConfig::new(32, 4, 10_000).unwrap();
        let schedule = chain_schedule(&tree, config);
        let mut builder = SimulatorBuilder::new(tree.clone(), config).schedule(schedule);
        for (i, v) in tree.nodes().skip(1).enumerate() {
            builder = builder
                .task(Task::uplink(TaskId(i as u16), v, Rate::per_slotframe(1)))
                .unwrap();
        }
        let mut sim = builder.build();
        sim.run_slotframes(frames);
        let stats = sim.stats();
        prop_assert_eq!(
            stats.generated,
            stats.deliveries.len() as u64 + sim.queued_packets() as u64 + stats.queue_drops
        );
    }

    #[test]
    fn one_cell_per_link_uplink_delivers_everything_eventually(
        tree in tree_strategy(12),
    ) {
        let config = SlotframeConfig::new(32, 4, 10_000).unwrap();
        let schedule = chain_schedule(&tree, config);
        let mut builder = SimulatorBuilder::new(tree.clone(), config).schedule(schedule);
        for (i, v) in tree.nodes().skip(1).enumerate() {
            // A single packet per node (released in frame 0 only): with one
            // dedicated cell per link, everything must eventually arrive.
            builder = builder
                .task(Task::uplink(TaskId(i as u16), v, Rate::new(1, 10_000).unwrap()))
                .unwrap();
        }
        let mut sim = builder.build();
        // Horizon: the most congested link serves a whole subtree at one
        // cell per frame, plus the path depth.
        sim.run_slotframes(tree.len() as u64 + u64::from(tree.layers()) + 1);
        prop_assert!(sim.stats().generated > 0);
        prop_assert_eq!(sim.stats().deliveries.len() as u64, sim.stats().generated);
        prop_assert_eq!(sim.stats().collisions, 0);
    }

    #[test]
    fn latency_respects_hop_count(tree in tree_strategy(12)) {
        // A packet from depth d needs at least d slots to reach the root.
        let config = SlotframeConfig::new(64, 4, 10_000).unwrap();
        let schedule = chain_schedule(&tree, config);
        let mut builder = SimulatorBuilder::new(tree.clone(), config).schedule(schedule);
        for (i, v) in tree.nodes().skip(1).enumerate() {
            builder = builder
                .task(Task::uplink(TaskId(i as u16), v, Rate::new(1, 8).unwrap()))
                .unwrap();
        }
        let mut sim = builder.build();
        sim.run_slotframes(10);
        for d in &sim.stats().deliveries {
            let depth = tree.depth(d.source);
            prop_assert!(
                d.latency_slots() >= u64::from(depth),
                "{} at depth {depth} delivered in {} slots",
                d.source,
                d.latency_slots()
            );
        }
    }

    #[test]
    fn rate_release_counts_are_exact(
        packets in 1u32..6,
        per in 1u32..5,
        frames in 1u64..40,
    ) {
        let rate = Rate::new(packets, per).unwrap();
        let released: u64 = (0..frames).map(|f| u64::from(rate.packets_in_slotframe(f))).sum();
        let exact = u64::from(packets) * frames / u64::from(per);
        // Accumulated releases never drift more than one period's worth.
        prop_assert!(released >= exact);
        prop_assert!(released <= exact + u64::from(packets));
    }

    #[test]
    fn packet_route_traversal_never_skips(hops in 1usize..8) {
        let route: Arc<[NodeId]> = (0..=hops as u16).map(NodeId).collect();
        let mut p = Packet::new(TaskId(0), 0, tsch_sim::Asn(0), route);
        let mut visited = vec![p.holder()];
        while !p.is_delivered() {
            p.advance();
            visited.push(p.holder());
        }
        prop_assert_eq!(visited.len(), hops + 1);
        let _ = Link::up(NodeId(0));
    }
}
