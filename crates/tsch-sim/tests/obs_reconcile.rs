//! Observability reconciliation: the metrics layer must agree with
//! [`SimStats`] *exactly* — both are incremented at the same sites — and
//! switching observability on must not change simulation behaviour at all.
//!
//! The scenario deliberately exercises every counter: an imperfect channel
//! (losses), two links sharing a cell (collisions) and an undersized queue
//! under an oversubscribed rate (queue drops).

use tsch_sim::{
    Cell, Direction, Link, LinkQuality, NetworkSchedule, NodeId, Rate, SimStats, Simulator,
    SimulatorBuilder, SlotframeConfig, Task, TaskId, Tree,
};

/// A 7-node tree: a 0-1-2-3-4 chain plus sibling leaves 5 and 6 under 1.
fn tree() -> Tree {
    Tree::from_parents(&[(1, 0), (2, 1), (3, 2), (4, 3), (5, 1), (6, 1)])
}

/// One cell per uplink, deepest-first — except links up(5) and up(6), which
/// share a cell on purpose: they share receiver 1, so their transmissions
/// collide whenever both queues are non-empty.
fn schedule(tree: &Tree, config: SlotframeConfig) -> NetworkSchedule {
    let mut schedule = NetworkSchedule::new(config);
    let mut links = tree.links(Direction::Up);
    links.sort_by_key(|&l| std::cmp::Reverse(tree.layer_of_link(l)));
    let mut slot = 0u32;
    for link in links {
        if link == Link::up(NodeId(6)) {
            continue; // assigned below, on top of up(5)'s cell
        }
        schedule.assign(Cell::new(slot, 0), link).unwrap();
        if link == Link::up(NodeId(5)) {
            schedule
                .assign(Cell::new(slot, 0), Link::up(NodeId(6)))
                .unwrap();
        }
        slot += 1;
    }
    schedule
}

fn build(observability: bool) -> Simulator {
    let tree = tree();
    let config = SlotframeConfig::new(16, 2, 10_000).unwrap();
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(schedule(&tree, config))
        .quality(LinkQuality::uniform(0.8).unwrap())
        .queue_capacity(1)
        .seed(0x0B5E_CAFE);
    if observability {
        builder = builder.observability(256);
    }
    // Node 4 is oversubscribed: two packets per frame into a single cell
    // with a one-deep queue, guaranteeing queue drops once losses back the
    // chain up.
    for (i, v) in tree.nodes().skip(1).enumerate() {
        let rate = if v == NodeId(4) {
            Rate::per_slotframe(2)
        } else {
            Rate::per_slotframe(1)
        };
        builder = builder
            .task(Task::uplink(TaskId(i as u32), v, rate))
            .unwrap();
    }
    builder.build()
}

fn run(observability: bool) -> Simulator {
    let mut sim = build(observability);
    sim.run_slotframes(50);
    sim
}

/// Every field of [`SimStats`] that the metrics layer mirrors, for the
/// byte-identical comparison (run_time is wall clock and excluded).
fn fingerprint(stats: &SimStats) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        &stats.deliveries,
        stats.tx_attempts,
        stats.tx_attempts_per_link(),
        stats.collisions,
        stats.losses,
        stats.queue_drops,
        stats.generated,
        stats.queue_high_water(),
        stats.slots_simulated,
    )
}

#[test]
fn scenario_exercises_every_counter() {
    let sim = run(false);
    let stats = sim.stats();
    assert!(stats.losses > 0, "imperfect channel must lose frames");
    assert!(stats.collisions > 0, "shared cell must collide");
    assert!(stats.queue_drops > 0, "oversubscribed queue must drop");
    assert!(
        !stats.deliveries.is_empty(),
        "traffic must still get through"
    );
}

#[test]
fn metrics_reconcile_exactly_with_sim_stats() {
    let sim = run(true);
    let stats = sim.stats();
    let snap = sim.metrics_snapshot();

    // Counters and stats are incremented at the same sites, so this is
    // exact equality, not tolerance-based agreement.
    assert_eq!(snap.counter("sim.slots"), Some(stats.slots_simulated));
    assert_eq!(snap.counter("sim.tx_attempts"), Some(stats.tx_attempts));
    assert_eq!(snap.counter("sim.collisions"), Some(stats.collisions));
    assert_eq!(snap.counter("sim.losses"), Some(stats.losses));
    assert_eq!(snap.counter("sim.queue_drops"), Some(stats.queue_drops));
    assert_eq!(snap.counter("sim.generated"), Some(stats.generated));
    assert_eq!(
        snap.counter("sim.deliveries"),
        Some(stats.deliveries.len() as u64)
    );

    // The latency histogram sees one observation per delivery, and its sum
    // is the total end-to-end latency.
    let latency = snap.histograms.get("sim.latency_slots").unwrap();
    assert_eq!(latency.count, stats.deliveries.len() as u64);
    let total: u128 = stats
        .deliveries
        .iter()
        .map(|d| u128::from(d.latency_slots()))
        .sum();
    assert_eq!(latency.sum, total);

    // The high-water gauge tracks the deepest queue seen anywhere.
    let deepest = stats.max_queue_high_water();
    assert_eq!(snap.gauge("sim.queue_high_water"), Some(deepest as f64));
}

#[test]
fn slotframe_spans_cover_the_run() {
    let sim = run(true);
    let spans: Vec<_> = sim.obs().spans.named("slotframe").collect();
    // One span per *completed* slotframe boundary crossed mid-run; the
    // final frame's span is only emitted once the next frame starts.
    assert_eq!(spans.len(), 49);
    let slots = u64::from(sim.config().slots);
    let mut tx_total = 0i64;
    for (i, span) in spans.iter().enumerate() {
        assert_eq!(span.layer, "sim");
        assert_eq!(span.start_asn, i as u64 * slots);
        assert_eq!(span.end_asn, span.start_asn + slots - 1);
        tx_total += span.detail;
    }
    // Span details carry per-frame tx attempts; summed they account for
    // every attempt except the final (unreported) frame's.
    assert!(tx_total > 0);
    assert!((tx_total as u64) <= sim.stats().tx_attempts);
}

#[test]
fn disabled_observability_is_empty_and_behaviour_identical() {
    let on = run(true);
    let off = run(false);

    assert!(off.metrics_snapshot().is_empty());
    assert!(off.obs().spans.is_empty());
    assert!(!on.metrics_snapshot().is_empty());
    assert!(!on.obs().spans.is_empty());

    // Observability never touches the RNG or the data path: both runs
    // must produce identical statistics, delivery for delivery.
    assert_eq!(fingerprint(on.stats()), fingerprint(off.stats()));
}
