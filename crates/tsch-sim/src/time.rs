//! Time-slotted channel-hopping time base: absolute slot numbers, cells and
//! slotframes.
//!
//! A TSCH network divides time into fixed-length *slots* (10 ms in the
//! paper's 6TiSCH testbed), numbered globally by the Absolute Slot Number
//! ([`Asn`]). Consecutive slots are grouped into *slotframes* that repeat for
//! the lifetime of the network; the paper uses a slotframe of 199 slots × 16
//! channels. A [`Cell`] is the atomic schedulable resource: one (slot offset,
//! channel offset) pair within the slotframe.

use core::fmt;

/// Absolute Slot Number: the number of slots elapsed since network start.
///
/// # Examples
///
/// ```
/// use tsch_sim::{Asn, SlotframeConfig};
///
/// let cfg = SlotframeConfig::paper_default();
/// let asn = Asn(400);
/// assert_eq!(cfg.slot_offset(asn), 400 % 199);
/// assert_eq!(cfg.slotframe_index(asn), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Asn(pub u64);

impl Asn {
    /// The slot at network start.
    pub const ZERO: Asn = Asn(0);

    /// The ASN `n` slots later.
    #[must_use]
    pub const fn plus(self, n: u64) -> Asn {
        Asn(self.0 + n)
    }

    /// Slots elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn since(self, earlier: Asn) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("`earlier` must not be later than `self`")
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ASN {}", self.0)
    }
}

/// A schedulable cell: a (slot offset, channel offset) pair in the slotframe.
///
/// # Examples
///
/// ```
/// use tsch_sim::Cell;
///
/// let c = Cell::new(42, 3);
/// assert_eq!(c.slot, 42);
/// assert_eq!(c.channel, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    /// Slot offset within the slotframe, `0..slots`.
    pub slot: u32,
    /// Channel offset, `0..channels`.
    pub channel: u16,
}

impl Cell {
    /// Creates a cell from a slot offset and channel offset.
    #[must_use]
    pub const fn new(slot: u32, channel: u16) -> Self {
        Self { slot, channel }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(s{}, ch{})", self.slot, self.channel)
    }
}

/// Static slotframe parameters of a network.
///
/// # Examples
///
/// ```
/// use tsch_sim::SlotframeConfig;
///
/// let cfg = SlotframeConfig::paper_default();
/// assert_eq!(cfg.slots, 199);
/// assert_eq!(cfg.channels, 16);
/// assert_eq!(cfg.cells_per_slotframe(), 199 * 16);
/// // One slotframe is 1.99 s, as reported in the paper.
/// assert!((cfg.slotframe_duration_s() - 1.99).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotframeConfig {
    /// Number of slots per slotframe.
    pub slots: u32,
    /// Number of channel offsets available.
    pub channels: u16,
    /// Duration of one slot in microseconds (6TiSCH default: 10 ms).
    pub slot_duration_us: u32,
}

impl SlotframeConfig {
    /// The configuration used throughout the paper's testbed and
    /// simulations: 199 slots, 16 channels, 10 ms slots.
    #[must_use]
    pub const fn paper_default() -> Self {
        Self {
            slots: 199,
            channels: 16,
            slot_duration_us: 10_000,
        }
    }

    /// Creates a configuration, validating that both dimensions are nonzero.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `slots` or `channels` is zero.
    pub fn new(slots: u32, channels: u16, slot_duration_us: u32) -> Result<Self, ConfigError> {
        if slots == 0 {
            return Err(ConfigError::ZeroSlots);
        }
        if channels == 0 {
            return Err(ConfigError::ZeroChannels);
        }
        Ok(Self {
            slots,
            channels,
            slot_duration_us,
        })
    }

    /// Same slotframe with a different channel budget (used by the Fig. 11(b)
    /// channel sweep).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroChannels`] if `channels` is zero.
    pub fn with_channels(self, channels: u16) -> Result<Self, ConfigError> {
        Self::new(self.slots, channels, self.slot_duration_us)
    }

    /// Total number of cells in one slotframe.
    #[must_use]
    pub const fn cells_per_slotframe(&self) -> u64 {
        self.slots as u64 * self.channels as u64
    }

    /// The slot offset of `asn` within the slotframe.
    #[must_use]
    pub const fn slot_offset(&self, asn: Asn) -> u32 {
        (asn.0 % self.slots as u64) as u32
    }

    /// How many complete slotframes precede `asn`.
    #[must_use]
    pub const fn slotframe_index(&self, asn: Asn) -> u64 {
        asn.0 / self.slots as u64
    }

    /// The first ASN of the slotframe containing `asn`.
    #[must_use]
    pub const fn slotframe_start(&self, asn: Asn) -> Asn {
        Asn(self.slotframe_index(asn) * self.slots as u64)
    }

    /// The earliest ASN at or after `now` whose slot offset is `slot`.
    #[must_use]
    pub fn next_occurrence(&self, now: Asn, slot: u32) -> Asn {
        debug_assert!(slot < self.slots);
        let cur = self.slot_offset(now);
        if slot >= cur {
            now.plus((slot - cur) as u64)
        } else {
            now.plus((self.slots - cur + slot) as u64)
        }
    }

    /// Duration of one slotframe in seconds.
    #[must_use]
    pub fn slotframe_duration_s(&self) -> f64 {
        self.slots as f64 * self.slot_duration_us as f64 / 1e6
    }

    /// Converts a slot count to seconds.
    #[must_use]
    pub fn slots_to_seconds(&self, slots: u64) -> f64 {
        slots as f64 * self.slot_duration_us as f64 / 1e6
    }

    /// Returns `true` if `cell` lies within this slotframe's bounds.
    #[must_use]
    pub const fn contains_cell(&self, cell: Cell) -> bool {
        cell.slot < self.slots && cell.channel < self.channels
    }
}

impl Default for SlotframeConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Errors constructing a [`SlotframeConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ConfigError {
    /// The slotframe must contain at least one slot.
    ZeroSlots,
    /// The network must have at least one channel.
    ZeroChannels,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroSlots => write!(f, "slotframe must have at least one slot"),
            ConfigError::ZeroChannels => write!(f, "network must have at least one channel"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_arithmetic() {
        assert_eq!(Asn::ZERO.plus(5), Asn(5));
        assert_eq!(Asn(10).since(Asn(4)), 6);
        assert_eq!(Asn(10).since(Asn(10)), 0);
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn asn_since_panics_on_future() {
        let _ = Asn(3).since(Asn(4));
    }

    #[test]
    fn paper_default_matches_testbed() {
        let cfg = SlotframeConfig::paper_default();
        assert_eq!(cfg.slots, 199);
        assert_eq!(cfg.channels, 16);
        assert_eq!(cfg.slot_duration_us, 10_000);
        assert!((cfg.slotframe_duration_s() - 1.99).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            SlotframeConfig::new(0, 16, 10).unwrap_err(),
            ConfigError::ZeroSlots
        );
        assert_eq!(
            SlotframeConfig::new(9, 0, 10).unwrap_err(),
            ConfigError::ZeroChannels
        );
        assert!(SlotframeConfig::new(9, 2, 10).is_ok());
    }

    #[test]
    fn with_channels_keeps_other_fields() {
        let cfg = SlotframeConfig::paper_default().with_channels(4).unwrap();
        assert_eq!(cfg.channels, 4);
        assert_eq!(cfg.slots, 199);
        assert!(SlotframeConfig::paper_default().with_channels(0).is_err());
    }

    #[test]
    fn slot_offset_and_index_wrap() {
        let cfg = SlotframeConfig::new(10, 2, 10_000).unwrap();
        assert_eq!(cfg.slot_offset(Asn(0)), 0);
        assert_eq!(cfg.slot_offset(Asn(9)), 9);
        assert_eq!(cfg.slot_offset(Asn(10)), 0);
        assert_eq!(cfg.slotframe_index(Asn(9)), 0);
        assert_eq!(cfg.slotframe_index(Asn(10)), 1);
        assert_eq!(cfg.slotframe_start(Asn(25)), Asn(20));
    }

    #[test]
    fn next_occurrence_same_or_future_slot() {
        let cfg = SlotframeConfig::new(10, 2, 10_000).unwrap();
        assert_eq!(cfg.next_occurrence(Asn(12), 2), Asn(12));
        assert_eq!(cfg.next_occurrence(Asn(12), 5), Asn(15));
        assert_eq!(
            cfg.next_occurrence(Asn(12), 1),
            Asn(21),
            "wraps to next frame"
        );
        assert_eq!(cfg.next_occurrence(Asn(0), 0), Asn(0));
    }

    #[test]
    fn contains_cell_bounds() {
        let cfg = SlotframeConfig::new(10, 2, 10_000).unwrap();
        assert!(cfg.contains_cell(Cell::new(9, 1)));
        assert!(!cfg.contains_cell(Cell::new(10, 0)));
        assert!(!cfg.contains_cell(Cell::new(0, 2)));
    }

    #[test]
    fn seconds_conversions() {
        let cfg = SlotframeConfig::paper_default();
        assert!((cfg.slots_to_seconds(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Asn(7).to_string(), "ASN 7");
        assert_eq!(Cell::new(3, 1).to_string(), "(s3, ch1)");
        assert!(ConfigError::ZeroSlots.to_string().contains("slot"));
    }
}
