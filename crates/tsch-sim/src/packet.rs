//! Tasks (periodic data flows) and the packets they generate.
//!
//! Following the paper (§II-A), a *task* periodically samples a physical
//! entity at a source node and sends the reading along the uplink path to
//! the gateway; for end-to-end (echo) tasks the gateway sends a control
//! packet back down the same path, as in the testbed experiments (§VI-B).
//! Rates are expressed in packets per slotframe and may be fractional
//! (e.g. the 1.5 packet/slotframe step of Fig. 10), represented exactly as
//! a rational number.

use crate::time::Asn;
use crate::topology::{NodeId, Tree};
use core::fmt;
use std::sync::Arc;

/// Identifier of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A packet generation rate in packets per slotframe, as an exact rational
/// `packets / per_slotframes`.
///
/// # Examples
///
/// ```
/// use tsch_sim::Rate;
///
/// let r = Rate::per_slotframe(1);
/// assert_eq!(r.as_f64(), 1.0);
/// let r = Rate::new(3, 2).unwrap(); // 1.5 packets per slotframe
/// assert_eq!(r.as_f64(), 1.5);
/// // Releases over slotframes 0..4: 2, 1, 2, 1 packets (accumulated).
/// assert_eq!(r.packets_in_slotframe(0), 2);
/// assert_eq!(r.packets_in_slotframe(1), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rate {
    packets: u32,
    per_slotframes: u32,
}

impl Rate {
    /// `packets` per `per_slotframes` slotframes.
    ///
    /// # Errors
    ///
    /// Returns [`RateError`] if `per_slotframes` is zero.
    pub const fn new(packets: u32, per_slotframes: u32) -> Result<Self, RateError> {
        if per_slotframes == 0 {
            return Err(RateError::ZeroDenominator);
        }
        Ok(Self {
            packets,
            per_slotframes,
        })
    }

    /// A whole number of packets every slotframe.
    #[must_use]
    pub const fn per_slotframe(packets: u32) -> Self {
        Self {
            packets,
            per_slotframes: 1,
        }
    }

    /// The rate as a float (packets per slotframe).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        f64::from(self.packets) / f64::from(self.per_slotframes)
    }

    /// The exact numerator: packets per `per_slotframes()` slotframes.
    #[must_use]
    pub const fn packets(self) -> u32 {
        self.packets
    }

    /// The exact denominator in slotframes.
    #[must_use]
    pub const fn per_slotframes(self) -> u32 {
        self.per_slotframes
    }

    /// Number of packets released in slotframe `index`, using an exact
    /// accumulator: over any window of `per_slotframes` frames exactly
    /// `packets` packets are released, front-loaded.
    #[must_use]
    pub fn packets_in_slotframe(self, index: u64) -> u32 {
        let n = u64::from(self.packets);
        let d = u64::from(self.per_slotframes);
        (((index + 1) * n).div_ceil(d) - (index * n).div_ceil(d)) as u32
    }

    /// Cells needed per slotframe to sustain this rate on one hop
    /// (`⌈packets / per_slotframes⌉`).
    #[must_use]
    pub fn cells_per_slotframe(self) -> u32 {
        self.packets.div_ceil(self.per_slotframes)
    }
}

impl Default for Rate {
    fn default() -> Self {
        Rate::per_slotframe(1)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.per_slotframes == 1 {
            write!(f, "{} pkt/SF", self.packets)
        } else {
            write!(f, "{}/{} pkt/SF", self.packets, self.per_slotframes)
        }
    }
}

/// Error constructing a [`Rate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RateError {
    /// The slotframe denominator must be positive.
    ZeroDenominator,
}

impl fmt::Display for RateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateError::ZeroDenominator => write!(f, "rate denominator must be positive"),
        }
    }
}

impl std::error::Error for RateError {}

/// What a task does with its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Sensor data flows up to the gateway only.
    UplinkOnly,
    /// End-to-end echo: up to the gateway, then back down the same path to
    /// the source (the testbed's configuration).
    Echo,
}

/// A periodic data flow rooted at a source node.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Unique id.
    pub id: TaskId,
    /// The sensing node that generates packets.
    pub source: NodeId,
    /// Packet generation rate.
    pub rate: Rate,
    /// Uplink-only or echo.
    pub kind: TaskKind,
}

impl Task {
    /// Creates an echo task (the testbed default).
    #[must_use]
    pub fn echo(id: TaskId, source: NodeId, rate: Rate) -> Self {
        Self {
            id,
            source,
            rate,
            kind: TaskKind::Echo,
        }
    }

    /// Creates an uplink-only task.
    #[must_use]
    pub fn uplink(id: TaskId, source: NodeId, rate: Rate) -> Self {
        Self {
            id,
            source,
            rate,
            kind: TaskKind::UplinkOnly,
        }
    }

    /// The full node path this task's packets traverse: source → … → gateway
    /// for uplink-only, plus gateway → … → source for echo tasks.
    #[must_use]
    pub fn route(&self, tree: &Tree) -> Vec<NodeId> {
        let up = tree.path_to_root(self.source);
        match self.kind {
            TaskKind::UplinkOnly => up,
            TaskKind::Echo => {
                let mut route = up.clone();
                route.extend(up.iter().rev().skip(1));
                route
            }
        }
    }
}

/// A packet in flight.
///
/// The packet carries its full route (shared, since every packet of a task
/// follows the same path) and a hop index pointing at its current holder.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// The task that generated this packet.
    pub task: TaskId,
    /// Sequence number within the task.
    pub seq: u64,
    /// ASN at generation time.
    pub created: Asn,
    /// The node path from source to final destination.
    pub route: Arc<[NodeId]>,
    /// Index into `route` of the node currently holding the packet.
    pub hop: usize,
}

impl Packet {
    /// Creates a packet at the start of its route.
    ///
    /// # Panics
    ///
    /// Panics if the route is empty.
    #[must_use]
    pub fn new(task: TaskId, seq: u64, created: Asn, route: Arc<[NodeId]>) -> Self {
        assert!(!route.is_empty(), "a packet route cannot be empty");
        Self {
            task,
            seq,
            created,
            route,
            hop: 0,
        }
    }

    /// The node currently holding the packet.
    #[must_use]
    pub fn holder(&self) -> NodeId {
        self.route[self.hop]
    }

    /// The next node on the route, or `None` if delivered.
    #[must_use]
    pub fn next_hop(&self) -> Option<NodeId> {
        self.route.get(self.hop + 1).copied()
    }

    /// Returns `true` once the packet reached the end of its route.
    #[must_use]
    pub fn is_delivered(&self) -> bool {
        self.hop + 1 == self.route.len()
    }

    /// Advances the packet one hop.
    ///
    /// # Panics
    ///
    /// Panics if the packet is already delivered.
    pub fn advance(&mut self) {
        assert!(!self.is_delivered(), "cannot advance a delivered packet");
        self.hop += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_constructors() {
        assert_eq!(Rate::per_slotframe(2).as_f64(), 2.0);
        assert_eq!(Rate::new(3, 2).unwrap().as_f64(), 1.5);
        assert_eq!(Rate::new(1, 0).unwrap_err(), RateError::ZeroDenominator);
    }

    #[test]
    fn rate_release_pattern_integral() {
        let r = Rate::per_slotframe(2);
        for f in 0..10 {
            assert_eq!(r.packets_in_slotframe(f), 2);
        }
    }

    #[test]
    fn rate_release_pattern_fractional() {
        let r = Rate::new(3, 2).unwrap(); // 1.5/SF
        let counts: Vec<u32> = (0..6).map(|f| r.packets_in_slotframe(f)).collect();
        assert_eq!(counts.iter().sum::<u32>(), 9, "3 packets every 2 frames");
        for w in 0..4 {
            let window: u32 = (w..w + 2).map(|f| r.packets_in_slotframe(f)).sum();
            assert_eq!(window, 3, "every 2-frame window releases exactly 3");
        }
    }

    #[test]
    fn rate_release_pattern_sparse() {
        let r = Rate::new(1, 4).unwrap(); // one packet every 4 slotframes
        let counts: Vec<u32> = (0..8).map(|f| r.packets_in_slotframe(f)).collect();
        assert_eq!(counts.iter().sum::<u32>(), 2);
        assert_eq!(counts.iter().filter(|&&c| c > 0).count(), 2);
    }

    #[test]
    fn rate_zero_generates_nothing() {
        let r = Rate::per_slotframe(0);
        assert_eq!((0..10).map(|f| r.packets_in_slotframe(f)).sum::<u32>(), 0);
    }

    #[test]
    fn rate_cells_needed_rounds_up() {
        assert_eq!(Rate::new(3, 2).unwrap().cells_per_slotframe(), 2);
        assert_eq!(Rate::per_slotframe(3).cells_per_slotframe(), 3);
        assert_eq!(Rate::new(1, 4).unwrap().cells_per_slotframe(), 1);
    }

    #[test]
    fn rate_display() {
        assert_eq!(Rate::per_slotframe(2).to_string(), "2 pkt/SF");
        assert_eq!(Rate::new(3, 2).unwrap().to_string(), "3/2 pkt/SF");
    }

    #[test]
    fn task_routes() {
        let tree = Tree::paper_fig1_example();
        let up = Task::uplink(TaskId(0), NodeId(9), Rate::default());
        assert_eq!(
            up.route(&tree),
            vec![NodeId(9), NodeId(7), NodeId(3), NodeId(0)]
        );
        let echo = Task::echo(TaskId(1), NodeId(9), Rate::default());
        assert_eq!(
            echo.route(&tree),
            vec![
                NodeId(9),
                NodeId(7),
                NodeId(3),
                NodeId(0),
                NodeId(3),
                NodeId(7),
                NodeId(9)
            ]
        );
    }

    #[test]
    fn gateway_task_route_is_trivial() {
        let tree = Tree::paper_fig1_example();
        let echo = Task::echo(TaskId(0), NodeId(0), Rate::default());
        assert_eq!(echo.route(&tree), vec![NodeId(0)]);
    }

    #[test]
    fn packet_traversal() {
        let route: Arc<[NodeId]> = vec![NodeId(9), NodeId(7), NodeId(3)].into();
        let mut p = Packet::new(TaskId(0), 1, Asn(5), route);
        assert_eq!(p.holder(), NodeId(9));
        assert_eq!(p.next_hop(), Some(NodeId(7)));
        assert!(!p.is_delivered());
        p.advance();
        p.advance();
        assert!(p.is_delivered());
        assert_eq!(p.holder(), NodeId(3));
        assert_eq!(p.next_hop(), None);
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn packet_advance_past_end_panics() {
        let route: Arc<[NodeId]> = vec![NodeId(0)].into();
        let mut p = Packet::new(TaskId(0), 0, Asn(0), route);
        p.advance();
    }

    #[test]
    #[should_panic(expected = "route cannot be empty")]
    fn packet_empty_route_panics() {
        let route: Arc<[NodeId]> = Vec::new().into();
        let _ = Packet::new(TaskId(0), 0, Asn(0), route);
    }
}
