//! Discrete-event simulator of a multi-channel, multi-hop TSCH (6TiSCH-style)
//! industrial wireless network.
//!
//! This crate is the substrate the HARP reproduction runs on, replacing the
//! paper's 50-node CC2650 testbed. It models:
//!
//! * the TSCH time base — slots, slotframes, cells ([`Asn`], [`Cell`],
//!   [`SlotframeConfig`]);
//! * the tree routing topology with per-link layers ([`Tree`], [`Link`]);
//! * the global communication schedule and its collision analysis
//!   ([`NetworkSchedule`], [`InterferenceModel`]);
//! * periodic tasks, packets, queues and the slot-by-slot data-plane
//!   execution ([`Task`], [`Simulator`]);
//! * the management plane carrying network-management messages with
//!   management-cell timing ([`MgmtPlane`]), plus a CoAP-style transport
//!   layer with pluggable loss models and reliability ([`ControlPlane`],
//!   [`Transport`]).
//!
//! Everything is deterministic given a `u64` seed.
//!
//! # Examples
//!
//! Run one echo task over a two-hop chain with a hand-made schedule:
//!
//! ```
//! use tsch_sim::{
//!     Cell, Link, NetworkSchedule, NodeId, Rate, SimulatorBuilder,
//!     SlotframeConfig, Task, TaskId, Tree,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tree = Tree::from_parents(&[(1, 0), (2, 1)]);
//! let cfg = SlotframeConfig::new(10, 2, 10_000)?;
//! let mut schedule = NetworkSchedule::new(cfg);
//! schedule.assign(Cell::new(0, 0), Link::up(NodeId(2)))?;
//! schedule.assign(Cell::new(1, 0), Link::up(NodeId(1)))?;
//! schedule.assign(Cell::new(2, 0), Link::down(NodeId(1)))?;
//! schedule.assign(Cell::new(3, 0), Link::down(NodeId(2)))?;
//!
//! let mut sim = SimulatorBuilder::new(tree, cfg)
//!     .schedule(schedule)
//!     .task(Task::echo(TaskId(0), NodeId(2), Rate::per_slotframe(1)))?
//!     .build();
//! sim.run_slotframes(10);
//! assert_eq!(sim.stats().deliveries.len(), 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod engine;
mod faults;
mod hopping;
mod interference;
mod mgmt;
mod packet;
mod par;
mod radio;
pub mod reference;
mod rng;
mod schedule;
pub mod sharded;
mod stats;
mod time;
mod topology;
mod trace;
mod transport;

pub use calendar::EventCalendar;
pub use engine::{
    SimError, Simulator, SimulatorBuilder, DEFAULT_MAX_RETRIES, DEFAULT_QUEUE_CAPACITY,
};
pub use faults::{FaultAction, FaultPlan};
pub use harp_obs::{MetricsSnapshot, Obs, SpanEvent, SpanRing, NO_NODE};
pub use hopping::{HoppingError, HoppingSequence};
pub use interference::{GlobalInterference, InterferenceModel, TwoHopInterference};
pub use mgmt::{Delivered, MgmtError, MgmtPlane};
pub use packet::{Packet, Rate, RateError, Task, TaskId, TaskKind};
pub use par::{bench_threads, par_for_each_mut_with_threads, par_map, par_map_with_threads};
pub use radio::{LinkQuality, PdrError};
pub use rng::SplitMix64;
pub use schedule::{CollisionReport, NetworkSchedule, ScheduleError};
pub use sharded::{ShardOptions, ShardViolation, ShardedSimulator};
pub use stats::{
    mean, percentile_nearest_rank, DeliveryRecord, LatencySummary, SimStats, StatsMode,
};
pub use time::{Asn, Cell, ConfigError, SlotframeConfig};
pub use topology::{Direction, Link, NodeId, TopologyError, Tree, TreeBuilder};
pub use trace::{TraceBuffer, TraceEvent};
pub use transport::{
    Chaos, ControlPlane, Envelope, EnvelopeKind, Lossy, ReliabilityConfig, Reliable, Transport,
    TransportStats, TxFate,
};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_types_are_debug() {
        fn assert_debug<T: std::fmt::Debug>() {}
        assert_debug::<Asn>();
        assert_debug::<Cell>();
        assert_debug::<SlotframeConfig>();
        assert_debug::<Tree>();
        assert_debug::<Link>();
        assert_debug::<NetworkSchedule>();
        assert_debug::<Simulator>();
        assert_debug::<MgmtPlane<u8>>();
        assert_debug::<ControlPlane<u8>>();
        assert_debug::<SimStats>();
    }

    #[test]
    fn simulator_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulator>();
        assert_send::<MgmtPlane<u64>>();
        assert_send::<ControlPlane<u64>>();
    }
}
