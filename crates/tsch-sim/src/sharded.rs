//! Sharded subtree execution: one [`Simulator`] per depth-1 subtree,
//! driven concurrently.
//!
//! In a TSCH tree the only radio shared between two depth-1 subtrees is
//! the gateway itself. If no scheduled cell mixes links from different
//! subtrees, transmissions in different subtrees are never checked against
//! each other (interference is only resolved among links sharing a cell),
//! and every packet's route stays inside its subtree plus the gateway. The
//! slot loop then factors exactly: each subtree — grafted under its own
//! copy of the gateway — can be simulated by an independent engine, and
//! the per-shard measurements merge into network totals afterwards.
//!
//! [`ShardedSimulator::try_new`] verifies the two preconditions and
//! reports a [`ShardViolation`] otherwise:
//!
//! * no task may originate at the gateway (its traffic would fan into
//!   other shards);
//! * no cell may be assigned links from two different subtrees.
//!
//! # Fidelity
//!
//! Shard executions are *exact* with respect to the monolithic engine —
//! same queues, same collisions, same retries — except for two documented
//! deviations:
//!
//! * each shard consumes its own deterministic RNG stream (derived from
//!   the run seed), so on lossy links (`pdr < 1.0`) the loss pattern
//!   differs from the monolithic engine's single stream while remaining
//!   statistically equivalent and fully reproducible. With perfect links
//!   no randomness is drawn and the match is bit-exact.
//! * the gateway's queue high-water mark is reported as the sum of the
//!   per-shard peaks — an upper bound on the true instantaneous peak,
//!   since shard peaks need not coincide in time.
//!
//! Results never depend on the worker-thread count: shards are merged in
//! subtree order, and [`stats`](ShardedSimulator::stats) sorts delivery
//! records by delivery time.

use crate::packet::{Task, TaskKind};
use crate::par::{bench_threads, par_for_each_mut_with_threads};
use crate::radio::LinkQuality;
use crate::schedule::NetworkSchedule;
use crate::stats::{SimStats, StatsMode};
use crate::time::{Cell, SlotframeConfig};
use crate::topology::{Link, NodeId, Tree};
use crate::trace::TraceEvent;
use crate::{Simulator, SimulatorBuilder};
use core::fmt;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Why a scenario cannot be sharded (fall back to the monolithic
/// [`Simulator`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardViolation {
    /// A task originates at the gateway, so its packets would cross from
    /// the gateway into a subtree's downlinks.
    GatewayTask(crate::packet::TaskId),
    /// A cell is assigned links from two different depth-1 subtrees, so
    /// their conflict would span shards.
    MixedCell(Cell),
}

impl fmt::Display for ShardViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardViolation::GatewayTask(t) => write!(f, "task {t} originates at the gateway"),
            ShardViolation::MixedCell(c) => {
                write!(f, "cell {c} mixes links from different subtrees")
            }
        }
    }
}

impl std::error::Error for ShardViolation {}

/// Per-shard engine knobs, applied uniformly to every shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardOptions {
    /// Trace-ring capacity per shard (0 disables tracing, the default).
    pub trace_capacity: usize,
    /// Stats retention mode for every shard and the merged view.
    pub stats_mode: StatsMode,
    /// When the mean shard size (`tree.len() / subtree count`) falls below
    /// this threshold, skip sharding and run one monolithic engine
    /// serially instead — below a few thousand nodes per shard, thread
    /// fork-join overhead outweighs the parallel win. `0` (the default)
    /// never falls back. Preconditions are validated either way, and the
    /// fallback run is bit-exact with a plain [`Simulator`] on the same
    /// seed.
    pub serial_fallback_threshold: usize,
}

struct Shard {
    sim: Simulator,
    /// Local node index → global [`NodeId`]; entry 0 is the gateway.
    node_map: Vec<NodeId>,
}

/// A simulator partitioned into independently executed depth-1 subtrees.
/// See the module docs for the preconditions and fidelity contract.
pub struct ShardedSimulator {
    shards: Vec<Shard>,
    /// Monolithic engine used instead of `shards` when the scenario fell
    /// below [`ShardOptions::serial_fallback_threshold`].
    fallback: Option<Simulator>,
    stats_mode: StatsMode,
    run_time: Duration,
}

impl fmt::Debug for ShardedSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSimulator")
            .field("shards", &self.shards.len())
            .field("stats_mode", &self.stats_mode)
            .finish_non_exhaustive()
    }
}

impl ShardedSimulator {
    /// Partitions the scenario by depth-1 subtree and builds one engine
    /// per shard (two-hop interference, per-shard seeds derived from
    /// `seed`).
    ///
    /// # Errors
    ///
    /// Returns a [`ShardViolation`] when a task originates at the gateway
    /// or a cell mixes links from different subtrees.
    ///
    /// # Panics
    ///
    /// Panics if a task's source is outside the tree (mirroring
    /// [`SimulatorBuilder::task`](crate::SimulatorBuilder)'s validation,
    /// which would reject it).
    pub fn try_new(
        tree: &Tree,
        config: SlotframeConfig,
        schedule: &NetworkSchedule,
        quality: &LinkQuality,
        seed: u64,
        tasks: &[Task],
        options: ShardOptions,
    ) -> Result<Self, ShardViolation> {
        let root = NodeId(0);
        // Global node → owning shard (None for the gateway).
        let mut shard_of: Vec<Option<usize>> = vec![None; tree.len()];
        // Per shard: local index → global node, gateway first, then the
        // subtree in preorder.
        let mut node_maps: Vec<Vec<NodeId>> = Vec::new();
        for &top in tree.children(root) {
            let k = node_maps.len();
            let mut map = vec![root];
            let mut stack = vec![top];
            while let Some(v) = stack.pop() {
                shard_of[v.index()] = Some(k);
                map.push(v);
                stack.extend(tree.children(v).iter().rev());
            }
            node_maps.push(map);
        }

        for task in tasks {
            if task.source == root {
                return Err(ShardViolation::GatewayTask(task.id));
            }
        }

        // Invert the maps once: global node → local index in its shard.
        let mut local_of: Vec<u32> = vec![0; tree.len()];
        for map in &node_maps {
            for (local, &global) in map.iter().enumerate() {
                if global != root {
                    local_of[global.index()] = u32::try_from(local).expect("local id fits u32");
                }
            }
        }
        let localize = |link: Link| Link {
            child: NodeId(local_of[link.child.index()]),
            direction: link.direction,
        };

        let mut schedules: Vec<NetworkSchedule> = node_maps
            .iter()
            .map(|_| NetworkSchedule::new(config))
            .collect();
        let mut cell_owner: HashMap<Cell, usize> = HashMap::new();
        for (cell, links) in schedule.iter_cells() {
            for &link in links {
                let k = shard_of[link.child.index()].expect("scheduled link has a child owner");
                if *cell_owner.entry(cell).or_insert(k) != k {
                    return Err(ShardViolation::MixedCell(cell));
                }
                schedules[k]
                    .assign(cell, localize(link))
                    .expect("remapping preserves a valid assignment");
            }
        }

        // Preconditions hold; below the fallback threshold a single
        // monolithic engine beats fork-join overhead, so build that
        // instead of per-subtree shards.
        let mean_shard_size = tree.len() / node_maps.len().max(1);
        if mean_shard_size < options.serial_fallback_threshold {
            let mut builder = SimulatorBuilder::new(tree.clone(), config)
                .schedule(schedule.clone())
                .quality(quality.clone())
                .seed(seed)
                .trace_capacity(options.trace_capacity)
                .stats_mode(options.stats_mode);
            for task in tasks {
                builder = builder.task(task.clone()).expect("task ids are unique");
            }
            return Ok(Self {
                shards: Vec::new(),
                fallback: Some(builder.build()),
                stats_mode: options.stats_mode,
                run_time: Duration::ZERO,
            });
        }

        let mut shards = Vec::with_capacity(node_maps.len());
        let mut seed_rng = crate::rng::SplitMix64::new(seed);
        for (k, map) in node_maps.iter().enumerate() {
            let pairs: Vec<(u32, u32)> = map
                .iter()
                .enumerate()
                .skip(1)
                .map(|(local, &global)| {
                    let parent = tree.parent(global).expect("non-root node has a parent");
                    let local_parent = if parent == root {
                        0
                    } else {
                        local_of[parent.index()]
                    };
                    (
                        u32::try_from(local).expect("local id fits u32"),
                        local_parent,
                    )
                })
                .collect();
            let local_tree = Tree::from_parents(&pairs);

            let mut local_quality = LinkQuality::perfect();
            for (local, &global) in map.iter().enumerate().skip(1) {
                for global_link in [Link::up(global), Link::down(global)] {
                    let pdr = quality.pdr(global_link);
                    if pdr < 1.0 {
                        let child = NodeId(u32::try_from(local).expect("local id fits u32"));
                        let local_link = Link {
                            child,
                            direction: global_link.direction,
                        };
                        local_quality
                            .set_pdr(local_link, pdr)
                            .expect("pdr was valid globally");
                    }
                }
            }

            let shard_seed = seed_rng.next_u64();
            let mut builder = SimulatorBuilder::new(local_tree, config)
                .schedule(std::mem::replace(
                    &mut schedules[k],
                    NetworkSchedule::new(config),
                ))
                .quality(local_quality)
                .seed(shard_seed)
                .trace_capacity(options.trace_capacity)
                .stats_mode(options.stats_mode);
            for task in tasks
                .iter()
                .filter(|t| shard_of[t.source.index()] == Some(k))
            {
                let local_source = NodeId(local_of[task.source.index()]);
                let local_task = match task.kind {
                    TaskKind::Echo => Task::echo(task.id, local_source, task.rate),
                    TaskKind::UplinkOnly => Task::uplink(task.id, local_source, task.rate),
                };
                builder = builder
                    .task(local_task)
                    .expect("task ids are unique per shard");
            }
            shards.push(Shard {
                sim: builder.build(),
                node_map: map.clone(),
            });
        }

        Ok(Self {
            shards,
            fallback: None,
            stats_mode: options.stats_mode,
            run_time: Duration::ZERO,
        })
    }

    /// Number of depth-1 subtree shards (`1` in serial-fallback mode,
    /// where a single monolithic engine runs everything).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        if self.fallback.is_some() {
            1
        } else {
            self.shards.len()
        }
    }

    /// Whether the scenario fell below
    /// [`ShardOptions::serial_fallback_threshold`] and runs on one
    /// monolithic serial engine instead of per-subtree shards.
    #[must_use]
    pub fn is_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// Total conflict-adjacency storage across all shards, in bytes.
    #[must_use]
    pub fn conflict_storage_bytes(&self) -> usize {
        if let Some(sim) = &self.fallback {
            return sim.conflict_storage_bytes();
        }
        self.shards
            .iter()
            .map(|s| s.sim.conflict_storage_bytes())
            .sum()
    }

    /// Advances every shard by `n` slotframes on [`bench_threads`] workers.
    pub fn run_slotframes(&mut self, n: u64) {
        self.run_slotframes_with_threads(n, bench_threads());
    }

    /// Advances every shard by `n` slotframes on `threads` workers. The
    /// outcome is identical for every thread count.
    pub fn run_slotframes_with_threads(&mut self, n: u64, threads: usize) {
        let start = Instant::now();
        if let Some(sim) = &mut self.fallback {
            sim.run_slotframes(n);
        } else {
            par_for_each_mut_with_threads(&mut self.shards, threads, |_, shard| {
                shard.sim.run_slotframes(n);
            });
        }
        self.run_time += start.elapsed();
    }

    /// Merged network-wide measurements, with local node ids remapped to
    /// global ones and delivery records sorted by delivery time. The
    /// gateway's queue high-water mark is the sum of per-shard peaks (an
    /// upper bound); `run_time` is the wall-clock time of the parallel
    /// runs, so `slots_per_sec` reflects the sharded throughput.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        if let Some(sim) = &self.fallback {
            // Monolithic stats are already global; only normalize to the
            // sharded contract (merged run_time, canonical delivery sort).
            let mut stats = sim.stats().clone();
            stats.run_time = self.run_time;
            stats
                .deliveries
                .sort_by_key(|d| (d.delivered.0, d.source.0, d.created.0));
            return stats;
        }
        let mut merged = match self.stats_mode {
            StatsMode::Full => SimStats::new(),
            StatsMode::Streaming => SimStats::streaming(),
        };
        for shard in &self.shards {
            merged.merge_shard(shard.sim.stats(), &shard.node_map);
        }
        let root_peak: usize = self
            .shards
            .iter()
            .map(|s| s.sim.stats().queue_high_water_of(NodeId(0)))
            .sum();
        if root_peak > 0 {
            merged.record_queue_depth(NodeId(0), root_peak);
        }
        merged.slots_simulated = self
            .shards
            .first()
            .map_or(0, |s| s.sim.stats().slots_simulated);
        merged.run_time = self.run_time;
        merged
            .deliveries
            .sort_by_key(|d| (d.delivered.0, d.source.0, d.created.0));
        merged
    }

    /// All shards' trace events with global node ids, in the canonical
    /// [`sort_trace`] order. Complete only if
    /// [`ShardOptions::trace_capacity`] exceeded each shard's event count.
    #[must_use]
    pub fn merged_trace(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        if let Some(sim) = &self.fallback {
            all.extend(sim.trace().iter().copied());
            sort_trace(&mut all);
            return all;
        }
        for shard in &self.shards {
            let globalize = |link: Link| Link {
                child: shard.node_map[link.child.index()],
                direction: link.direction,
            };
            for event in shard.sim.trace().iter() {
                all.push(match *event {
                    TraceEvent::TxOk { at, link, cell } => TraceEvent::TxOk {
                        at,
                        link: globalize(link),
                        cell,
                    },
                    TraceEvent::TxCollision { at, link, cell } => TraceEvent::TxCollision {
                        at,
                        link: globalize(link),
                        cell,
                    },
                    TraceEvent::TxLoss { at, link, cell } => TraceEvent::TxLoss {
                        at,
                        link: globalize(link),
                        cell,
                    },
                    TraceEvent::Drop { at, link } => TraceEvent::Drop {
                        at,
                        link: globalize(link),
                    },
                });
            }
        }
        sort_trace(&mut all);
        all
    }
}

/// Sorts trace events into the canonical cross-shard order: by time, then
/// cell, then event kind, then link. Use it on a monolithic engine's trace
/// before comparing against [`ShardedSimulator::merged_trace`].
pub fn sort_trace(events: &mut [TraceEvent]) {
    fn key(e: &TraceEvent) -> (u64, u32, u16, u8, u32, bool) {
        match *e {
            TraceEvent::TxOk { at, link, cell } => (
                at.0,
                cell.slot,
                cell.channel,
                0,
                link.child.0,
                link.direction == crate::topology::Direction::Down,
            ),
            TraceEvent::TxCollision { at, link, cell } => (
                at.0,
                cell.slot,
                cell.channel,
                1,
                link.child.0,
                link.direction == crate::topology::Direction::Down,
            ),
            TraceEvent::TxLoss { at, link, cell } => (
                at.0,
                cell.slot,
                cell.channel,
                2,
                link.child.0,
                link.direction == crate::topology::Direction::Down,
            ),
            TraceEvent::Drop { at, link } => (
                at.0,
                u32::MAX,
                u16::MAX,
                3,
                link.child.0,
                link.direction == crate::topology::Direction::Down,
            ),
        }
    }
    events.sort_by_key(key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Rate, TaskId};
    use crate::time::Asn;

    fn star_of_chains() -> Tree {
        // Two depth-1 subtrees: 1-{3,4} and 2-{5}.
        Tree::from_parents(&[(1, 0), (2, 0), (3, 1), (4, 1), (5, 2)])
    }

    #[test]
    fn simulators_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulator>();
        assert_send::<ShardedSimulator>();
    }

    #[test]
    fn gateway_task_is_rejected() {
        let tree = star_of_chains();
        let config = SlotframeConfig::new(10, 2, 10_000).unwrap();
        let schedule = NetworkSchedule::new(config);
        let tasks = [Task::uplink(TaskId(0), NodeId(0), Rate::per_slotframe(1))];
        let err = ShardedSimulator::try_new(
            &tree,
            config,
            &schedule,
            &LinkQuality::perfect(),
            0,
            &tasks,
            ShardOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ShardViolation::GatewayTask(TaskId(0)));
    }

    #[test]
    fn mixed_cell_is_rejected() {
        let tree = star_of_chains();
        let config = SlotframeConfig::new(10, 2, 10_000).unwrap();
        let mut schedule = NetworkSchedule::new(config);
        let cell = Cell::new(3, 1);
        schedule.assign(cell, Link::up(NodeId(3))).unwrap();
        schedule.assign(cell, Link::up(NodeId(5))).unwrap();
        let err = ShardedSimulator::try_new(
            &tree,
            config,
            &schedule,
            &LinkQuality::perfect(),
            0,
            &[],
            ShardOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ShardViolation::MixedCell(cell));
    }

    #[test]
    fn shards_follow_depth_one_subtrees() {
        let tree = star_of_chains();
        let config = SlotframeConfig::new(10, 2, 10_000).unwrap();
        let sharded = ShardedSimulator::try_new(
            &tree,
            config,
            &NetworkSchedule::new(config),
            &LinkQuality::perfect(),
            0,
            &[],
            ShardOptions::default(),
        )
        .unwrap();
        assert_eq!(sharded.shard_count(), 2);
        assert_eq!(
            sharded.shards[0].node_map,
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]
        );
        assert_eq!(
            sharded.shards[1].node_map,
            vec![NodeId(0), NodeId(2), NodeId(5)]
        );
    }

    #[test]
    fn serial_fallback_matches_monolithic_engine_exactly() {
        let tree = star_of_chains();
        let config = SlotframeConfig::new(10, 2, 10_000).unwrap();
        let mut schedule = NetworkSchedule::new(config);
        schedule
            .assign(Cell::new(0, 0), Link::up(NodeId(3)))
            .unwrap();
        schedule
            .assign(Cell::new(1, 0), Link::up(NodeId(1)))
            .unwrap();
        schedule
            .assign(Cell::new(2, 0), Link::up(NodeId(5)))
            .unwrap();
        schedule
            .assign(Cell::new(3, 0), Link::up(NodeId(2)))
            .unwrap();
        let tasks = [
            Task::uplink(TaskId(0), NodeId(3), Rate::per_slotframe(1)),
            Task::uplink(TaskId(1), NodeId(5), Rate::per_slotframe(1)),
        ];
        let mut quality = LinkQuality::perfect();
        quality.set_pdr(Link::up(NodeId(3)), 0.7).unwrap();

        let options = ShardOptions {
            trace_capacity: 1024,
            // Mean shard size is 3 (6 nodes / 2 subtrees) — force fallback.
            serial_fallback_threshold: 1000,
            ..ShardOptions::default()
        };
        let mut sharded =
            ShardedSimulator::try_new(&tree, config, &schedule, &quality, 42, &tasks, options)
                .unwrap();
        assert!(sharded.is_fallback());
        assert_eq!(sharded.shard_count(), 1);
        sharded.run_slotframes_with_threads(20, 8);

        let mut builder = crate::SimulatorBuilder::new(tree, config)
            .schedule(schedule)
            .quality(quality)
            .seed(42)
            .trace_capacity(1024);
        for task in &tasks {
            builder = builder.task(task.clone()).unwrap();
        }
        let mut mono = builder.build();
        mono.run_slotframes(20);

        let sharded_stats = sharded.stats();
        let mono_stats = mono.stats();
        assert_eq!(sharded_stats.tx_attempts, mono_stats.tx_attempts);
        assert_eq!(sharded_stats.losses, mono_stats.losses);
        assert_eq!(sharded_stats.generated, mono_stats.generated);
        let mut mono_deliveries = mono_stats.deliveries.clone();
        mono_deliveries.sort_by_key(|d| (d.delivered.0, d.source.0, d.created.0));
        assert_eq!(sharded_stats.deliveries, mono_deliveries);
        let mut mono_trace: Vec<TraceEvent> = mono.trace().iter().copied().collect();
        sort_trace(&mut mono_trace);
        assert_eq!(sharded.merged_trace(), mono_trace);

        // The gateway-task and mixed-cell preconditions are still enforced
        // in fallback mode.
        let bad = [Task::uplink(TaskId(0), NodeId(0), Rate::per_slotframe(1))];
        let err = ShardedSimulator::try_new(
            &star_of_chains(),
            config,
            &NetworkSchedule::new(config),
            &LinkQuality::perfect(),
            0,
            &bad,
            options,
        )
        .unwrap_err();
        assert_eq!(err, ShardViolation::GatewayTask(TaskId(0)));
    }

    #[test]
    fn sort_trace_orders_by_time_cell_and_kind() {
        let late = TraceEvent::TxOk {
            at: Asn(5),
            link: Link::up(NodeId(1)),
            cell: Cell::new(0, 0),
        };
        let early_loss = TraceEvent::TxLoss {
            at: Asn(1),
            link: Link::up(NodeId(2)),
            cell: Cell::new(1, 0),
        };
        let early_ok = TraceEvent::TxOk {
            at: Asn(1),
            link: Link::up(NodeId(3)),
            cell: Cell::new(1, 0),
        };
        let mut events = vec![late, early_loss, early_ok];
        sort_trace(&mut events);
        assert_eq!(events, vec![early_ok, early_loss, late]);
    }
}
