//! Tree routing topology of an industrial wireless network.
//!
//! Following the paper's network model (§II-A), the routing topology is a
//! tree `G = (V, E)` rooted at the gateway. Every non-root node has exactly
//! one parent; links are directed (uplink toward the gateway, downlink away
//! from it) and carry a *layer* attribute equal to the child endpoint's hop
//! count to the gateway. `l(V_i)` — written [`Tree::link_layer`] here — is the
//! layer shared by all links between `V_i` and its children, and the layer of
//! a subtree `l(G_Vi)` ([`Tree::subtree_layer`]) is the largest link layer
//! inside it.

use core::fmt;

/// Identifier of a network node. The gateway is node `0` by convention of
/// [`TreeBuilder::new`], but any id may be the root.
///
/// # Examples
///
/// ```
/// use tsch_sim::NodeId;
///
/// let n = NodeId(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "N3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Traffic direction of a link or packet hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Toward the gateway (child transmits to parent).
    Up,
    /// Away from the gateway (parent transmits to child).
    Down,
}

impl Direction {
    /// Both directions, uplink first.
    pub const BOTH: [Direction; 2] = [Direction::Up, Direction::Down];

    /// The opposite direction.
    #[must_use]
    pub const fn reversed(self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Up => write!(f, "up"),
            Direction::Down => write!(f, "down"),
        }
    }
}

/// A directed link in the tree, identified by its child endpoint and
/// direction. (Each non-root node has exactly one parent, so the child id
/// pins down the tree edge.)
///
/// # Examples
///
/// ```
/// use tsch_sim::{Direction, Link, NodeId};
///
/// let up = Link::up(NodeId(5));
/// assert_eq!(up.child, NodeId(5));
/// assert_eq!(up.direction, Direction::Up);
/// assert_eq!(up.reversed(), Link::down(NodeId(5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// The child endpoint of the tree edge.
    pub child: NodeId,
    /// Which way traffic flows on this link.
    pub direction: Direction,
}

impl Link {
    /// The uplink of `child` (child → parent).
    #[must_use]
    pub const fn up(child: NodeId) -> Self {
        Self {
            child,
            direction: Direction::Up,
        }
    }

    /// The downlink of `child` (parent → child).
    #[must_use]
    pub const fn down(child: NodeId) -> Self {
        Self {
            child,
            direction: Direction::Down,
        }
    }

    /// The same edge in the opposite direction.
    #[must_use]
    pub const fn reversed(self) -> Link {
        Link {
            child: self.child,
            direction: self.direction.reversed(),
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.child, self.direction)
    }
}

/// Errors constructing or querying a [`Tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TopologyError {
    /// Referenced a node id that does not exist in the tree.
    UnknownNode(NodeId),
    /// The root has no parent, no uplink and no downlink.
    RootHasNoParent,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::RootHasNoParent => write!(f, "the gateway has no parent link"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incrementally builds a [`Tree`] root-first.
///
/// # Examples
///
/// ```
/// use tsch_sim::TreeBuilder;
///
/// let mut b = TreeBuilder::new();
/// let gw = b.root();
/// let relay = b.add_child(gw).unwrap();
/// let leaf = b.add_child(relay).unwrap();
/// let tree = b.build();
/// assert_eq!(tree.depth(leaf), 2);
/// assert_eq!(tree.parent(leaf), Some(relay));
/// ```
#[derive(Debug, Clone)]
pub struct TreeBuilder {
    parent: Vec<Option<NodeId>>,
}

impl TreeBuilder {
    /// Starts a tree whose root (the gateway) is node `0`.
    #[must_use]
    pub fn new() -> Self {
        Self { parent: vec![None] }
    }

    /// The root node id.
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes added so far (including the root).
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if only the root exists. (Never fully empty.)
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// Adds a node under `parent` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if `parent` has not been added.
    pub fn add_child(&mut self, parent: NodeId) -> Result<NodeId, TopologyError> {
        if parent.index() >= self.parent.len() {
            return Err(TopologyError::UnknownNode(parent));
        }
        let id = NodeId(u32::try_from(self.parent.len()).expect("more than u32::MAX nodes"));
        self.parent.push(Some(parent));
        Ok(id)
    }

    /// Finalises the tree, computing children lists and depths.
    #[must_use]
    pub fn build(self) -> Tree {
        Tree::from_parent_vec(self.parent)
    }
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable rooted tree topology.
///
/// Node ids are dense: `0..len()`. Use [`TreeBuilder`] or
/// [`Tree::from_parents`] to construct one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
    /// Max link layer within each node's subtree (`l(G_Vi)` in the paper);
    /// equals the node's own depth for leaves.
    subtree_layer: Vec<u32>,
    subtree_size: Vec<u32>,
}

impl Tree {
    /// Builds a tree from `(child, parent)` pairs; node `0` is the root and
    /// must not appear as a child.
    ///
    /// # Panics
    ///
    /// Panics if the pairs do not describe a tree over dense ids `1..=n`
    /// with parents of smaller construction order — use [`TreeBuilder`] for
    /// incremental, checked construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use tsch_sim::{NodeId, Tree};
    ///
    /// // 0 ← 1 ← 2, 0 ← 3
    /// let tree = Tree::from_parents(&[(1, 0), (2, 1), (3, 0)]);
    /// assert_eq!(tree.len(), 4);
    /// assert_eq!(tree.depth(NodeId(2)), 2);
    /// assert_eq!(tree.children(NodeId(0)), &[NodeId(1), NodeId(3)]);
    /// ```
    #[must_use]
    pub fn from_parents(pairs: &[(u32, u32)]) -> Tree {
        let n = pairs.len() + 1;
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        for &(child, par) in pairs {
            assert_ne!(child, 0, "the root cannot have a parent");
            assert!((child as usize) < n, "node ids must be dense 0..{n}");
            assert!((par as usize) < n, "node ids must be dense 0..{n}");
            assert!(parent[child as usize].is_none(), "duplicate child {child}");
            parent[child as usize] = Some(NodeId(par));
        }
        Tree::from_parent_vec(parent)
    }

    fn from_parent_vec(parent: Vec<Option<NodeId>>) -> Tree {
        let n = parent.len();
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, &p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(NodeId(u32::try_from(i).expect("dense u32 ids")));
            } else {
                assert_eq!(i, 0, "exactly node 0 may be the root");
            }
        }
        // Depths: BFS from the root. Parents must form an acyclic structure;
        // TreeBuilder guarantees parents precede children, from_parents
        // re-checks reachability here.
        let mut depth = vec![u32::MAX; n];
        depth[0] = 0;
        let mut queue = std::collections::VecDeque::from([NodeId(0)]);
        let mut seen = 1usize;
        while let Some(u) = queue.pop_front() {
            for &c in &children[u.index()] {
                assert_eq!(depth[c.index()], u32::MAX, "cycle at {c}");
                depth[c.index()] = depth[u.index()] + 1;
                seen += 1;
                queue.push_back(c);
            }
        }
        assert_eq!(seen, n, "all nodes must be reachable from the root");

        // Post-order accumulation of subtree layer and size.
        let mut subtree_layer = depth.clone();
        let mut subtree_size = vec![1u32; n];
        let mut order: Vec<NodeId> = (0..n)
            .map(|i| NodeId(u32::try_from(i).expect("dense u32 ids")))
            .collect();
        order.sort_by_key(|&v| std::cmp::Reverse(depth[v.index()]));
        for &v in &order {
            if let Some(p) = parent[v.index()] {
                let (vi, pi) = (v.index(), p.index());
                subtree_layer[pi] = subtree_layer[pi].max(subtree_layer[vi]);
                subtree_size[pi] += subtree_size[vi];
            }
        }

        Tree {
            parent,
            children,
            depth,
            subtree_layer,
            subtree_size,
        }
    }

    /// The gateway (root) node.
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes, including the gateway.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the tree is only the gateway.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// Iterates over all node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.parent.len()).map(|i| NodeId(i as u32))
    }

    /// The parent of `node`, or `None` for the root.
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// The children of `node`, in insertion order.
    #[must_use]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Returns `true` if `node` has no children.
    #[must_use]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children[node.index()].is_empty()
    }

    /// Hop count from `node` to the gateway.
    #[must_use]
    pub fn depth(&self, node: NodeId) -> u32 {
        self.depth[node.index()]
    }

    /// `l(V_i)`: the layer of the links connecting `node` to its children
    /// (the children's hop count), i.e. `depth(node) + 1`.
    #[must_use]
    pub fn link_layer(&self, node: NodeId) -> u32 {
        self.depth(node) + 1
    }

    /// The layer of the link whose child endpoint is `link.child`.
    #[must_use]
    pub fn layer_of_link(&self, link: Link) -> u32 {
        self.depth(link.child)
    }

    /// `l(G_Vi)`: the largest link layer within the subtree rooted at `node`.
    /// For a leaf this equals its own depth (it has no links below it).
    #[must_use]
    pub fn subtree_layer(&self, node: NodeId) -> u32 {
        self.subtree_layer[node.index()]
    }

    /// Number of nodes in the subtree rooted at `node`, including `node`.
    #[must_use]
    pub fn subtree_size(&self, node: NodeId) -> u32 {
        self.subtree_size[node.index()]
    }

    /// The maximum link layer in the whole network (the paper's "number of
    /// layers", e.g. 5 for the testbed).
    #[must_use]
    pub fn layers(&self) -> u32 {
        self.subtree_layer(self.root())
    }

    /// All nodes at a given depth (hop count), in id order.
    #[must_use]
    pub fn nodes_at_depth(&self, d: u32) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.depth(v) == d).collect()
    }

    /// The nodes of the subtree rooted at `node`, in preorder.
    #[must_use]
    pub fn subtree_nodes(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.subtree_size(node) as usize);
        let mut stack = vec![node];
        while let Some(u) = stack.pop() {
            out.push(u);
            // Reverse so preorder visits children in insertion order.
            for &c in self.children(u).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The uplink routing path from `node` to the gateway, inclusive of both.
    #[must_use]
    pub fn path_to_root(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// All node ids in post-order (children before parents). Useful for the
    /// bottom-up resource-interface generation phase.
    #[must_use]
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut pre = self.subtree_nodes(self.root());
        pre.reverse();
        // Reversed preorder with reversed child order is a valid post-order.
        pre
    }

    /// Hop distance between two nodes along tree edges.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        // Walk the deeper node up until depths match, then walk both.
        let (mut a, mut b) = (a, b);
        let mut dist = 0;
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("deeper node has a parent");
            dist += 1;
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("deeper node has a parent");
            dist += 1;
        }
        while a != b {
            a = self.parent(a).expect("non-root while unequal");
            b = self.parent(b).expect("non-root while unequal");
            dist += 2;
        }
        dist
    }

    /// Returns `true` if `ancestor` lies on `node`'s path to the root
    /// (a node is its own ancestor).
    #[must_use]
    pub fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cur = node;
        loop {
            if cur == ancestor {
                return true;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// The sender and receiver endpoints of a directed link.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::RootHasNoParent`] if `link.child` is the root.
    pub fn endpoints(&self, link: Link) -> Result<(NodeId, NodeId), TopologyError> {
        let parent = self
            .parent(link.child)
            .ok_or(TopologyError::RootHasNoParent)?;
        Ok(match link.direction {
            Direction::Up => (link.child, parent),
            Direction::Down => (parent, link.child),
        })
    }

    /// All directed links in the tree for one direction, ordered by child id.
    #[must_use]
    pub fn links(&self, direction: Direction) -> Vec<Link> {
        self.nodes()
            .filter(|&v| v != self.root())
            .map(|v| Link {
                child: v,
                direction,
            })
            .collect()
    }

    /// A copy of this tree in which `child`'s parent becomes `new_parent` —
    /// the topology change caused by a node switching to a more reliable
    /// relay (the paper's interference-driven dynamics).
    ///
    /// # Errors
    ///
    /// * [`TopologyError::RootHasNoParent`] if `child` is the root.
    /// * [`TopologyError::UnknownNode`] if either node does not exist, or if
    ///   `new_parent` lies inside `child`'s subtree (the move would create a
    ///   cycle).
    ///
    /// # Examples
    ///
    /// ```
    /// use tsch_sim::{NodeId, Tree};
    ///
    /// let tree = Tree::paper_fig1_example();
    /// let moved = tree.with_reparented(NodeId(9), NodeId(1)).unwrap();
    /// assert_eq!(moved.parent(NodeId(9)), Some(NodeId(1)));
    /// assert_eq!(moved.depth(NodeId(9)), 2);
    /// ```
    pub fn with_reparented(
        &self,
        child: NodeId,
        new_parent: NodeId,
    ) -> Result<Tree, TopologyError> {
        if child == self.root() {
            return Err(TopologyError::RootHasNoParent);
        }
        if child.index() >= self.len() || new_parent.index() >= self.len() {
            return Err(TopologyError::UnknownNode(new_parent));
        }
        if self.is_ancestor(child, new_parent) {
            return Err(TopologyError::UnknownNode(new_parent));
        }
        let mut parent = self.parent.clone();
        parent[child.index()] = Some(new_parent);
        Ok(Tree::from_parent_vec(parent))
    }

    /// A copy of this tree with one new leaf under `parent`; returns the
    /// new tree and the id of the added node (always `len()` of the old
    /// tree) — a node joining the network.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if `parent` does not exist.
    ///
    /// # Examples
    ///
    /// ```
    /// use tsch_sim::{NodeId, Tree};
    ///
    /// let tree = Tree::paper_fig1_example();
    /// let (grown, id) = tree.with_new_leaf(NodeId(9)).unwrap();
    /// assert_eq!(id, NodeId(12));
    /// assert_eq!(grown.depth(id), 4);
    /// assert_eq!(grown.layers(), 4, "the network grew deeper");
    /// ```
    pub fn with_new_leaf(&self, parent: NodeId) -> Result<(Tree, NodeId), TopologyError> {
        if parent.index() >= self.len() {
            return Err(TopologyError::UnknownNode(parent));
        }
        let id = NodeId(u32::try_from(self.len()).expect("more than u32::MAX nodes"));
        let mut parents = self.parent.clone();
        parents.push(Some(parent));
        Ok((Tree::from_parent_vec(parents), id))
    }

    /// The example 12-node, 3-layer topology of Fig. 1(a) in the paper.
    ///
    /// Gateway `0`; layer-1 nodes 1, 2, 3; node 1 has children 4, 5;
    /// node 2 has child 6; node 3 has children 7, 8; node 7 has children
    /// 9, 10; node 8 has child 11.
    #[must_use]
    pub fn paper_fig1_example() -> Tree {
        Tree::from_parents(&[
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 1),
            (5, 1),
            (6, 2),
            (7, 3),
            (8, 3),
            (9, 7),
            (10, 7),
            (11, 8),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Tree {
        Tree::paper_fig1_example()
    }

    #[test]
    fn builder_constructs_chain() {
        let mut b = TreeBuilder::new();
        let root = b.root();
        assert!(b.is_empty());
        let a = b.add_child(root).unwrap();
        let c = b.add_child(a).unwrap();
        assert_eq!(b.len(), 3);
        let t = b.build();
        assert_eq!(t.depth(c), 2);
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.parent(root), None);
    }

    #[test]
    fn builder_rejects_unknown_parent() {
        let mut b = TreeBuilder::new();
        assert_eq!(
            b.add_child(NodeId(9)).unwrap_err(),
            TopologyError::UnknownNode(NodeId(9))
        );
    }

    #[test]
    fn fig1_shape() {
        let t = fig1();
        assert_eq!(t.len(), 12);
        assert_eq!(t.layers(), 3);
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.children(NodeId(7)), &[NodeId(9), NodeId(10)]);
        assert!(t.is_leaf(NodeId(4)));
        assert!(!t.is_leaf(NodeId(7)));
    }

    #[test]
    fn fig1_depths_and_layers() {
        let t = fig1();
        assert_eq!(t.depth(NodeId(0)), 0);
        assert_eq!(t.depth(NodeId(3)), 1);
        assert_eq!(t.depth(NodeId(7)), 2);
        assert_eq!(t.depth(NodeId(9)), 3);
        // l(V_i) is the layer of V_i's links to its children.
        assert_eq!(t.link_layer(NodeId(0)), 1);
        assert_eq!(t.link_layer(NodeId(3)), 2);
        assert_eq!(t.link_layer(NodeId(7)), 3);
        // Link layer equals child's hop count.
        assert_eq!(t.layer_of_link(Link::up(NodeId(9))), 3);
        assert_eq!(t.layer_of_link(Link::down(NodeId(1))), 1);
    }

    #[test]
    fn fig1_subtree_layers() {
        let t = fig1();
        // G_V3 contains links at layers 2 and 3.
        assert_eq!(t.subtree_layer(NodeId(3)), 3);
        // G_V1 contains layer-2 links only.
        assert_eq!(t.subtree_layer(NodeId(1)), 2);
        // A leaf's subtree has no links below; its layer is its own depth.
        assert_eq!(t.subtree_layer(NodeId(4)), 2);
        assert_eq!(t.subtree_layer(NodeId(0)), 3);
    }

    #[test]
    fn fig1_subtree_sizes() {
        let t = fig1();
        assert_eq!(t.subtree_size(NodeId(0)), 12);
        assert_eq!(t.subtree_size(NodeId(3)), 6);
        assert_eq!(t.subtree_size(NodeId(7)), 3);
        assert_eq!(t.subtree_size(NodeId(4)), 1);
    }

    #[test]
    fn nodes_at_depth_matches_fig1() {
        let t = fig1();
        assert_eq!(t.nodes_at_depth(0), vec![NodeId(0)]);
        assert_eq!(t.nodes_at_depth(1), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.nodes_at_depth(3).len(), 3);
    }

    #[test]
    fn subtree_nodes_preorder() {
        let t = fig1();
        let sub = t.subtree_nodes(NodeId(3));
        assert_eq!(
            sub,
            vec![
                NodeId(3),
                NodeId(7),
                NodeId(9),
                NodeId(10),
                NodeId(8),
                NodeId(11)
            ]
        );
    }

    #[test]
    fn postorder_visits_children_first() {
        let t = fig1();
        let order = t.postorder();
        assert_eq!(order.len(), 12);
        let pos = |n: u32| {
            order
                .iter()
                .position(|&v| v == NodeId(n))
                .expect("node in order")
        };
        for &(child, parent) in &[(1u32, 0u32), (4, 1), (7, 3), (9, 7), (11, 8), (3, 0)] {
            assert!(pos(child) < pos(parent), "{child} before {parent}");
        }
    }

    #[test]
    fn path_to_root_from_leaf() {
        let t = fig1();
        assert_eq!(
            t.path_to_root(NodeId(9)),
            vec![NodeId(9), NodeId(7), NodeId(3), NodeId(0)]
        );
        assert_eq!(t.path_to_root(NodeId(0)), vec![NodeId(0)]);
    }

    #[test]
    fn distances() {
        let t = fig1();
        assert_eq!(t.distance(NodeId(9), NodeId(9)), 0);
        assert_eq!(t.distance(NodeId(9), NodeId(7)), 1);
        assert_eq!(t.distance(NodeId(9), NodeId(10)), 2);
        assert_eq!(t.distance(NodeId(9), NodeId(11)), 4);
        assert_eq!(t.distance(NodeId(4), NodeId(9)), 5);
    }

    #[test]
    fn ancestry() {
        let t = fig1();
        assert!(t.is_ancestor(NodeId(0), NodeId(9)));
        assert!(t.is_ancestor(NodeId(3), NodeId(9)));
        assert!(t.is_ancestor(NodeId(9), NodeId(9)));
        assert!(!t.is_ancestor(NodeId(1), NodeId(9)));
        assert!(!t.is_ancestor(NodeId(9), NodeId(3)));
    }

    #[test]
    fn endpoints_follow_direction() {
        let t = fig1();
        assert_eq!(
            t.endpoints(Link::up(NodeId(9))).unwrap(),
            (NodeId(9), NodeId(7))
        );
        assert_eq!(
            t.endpoints(Link::down(NodeId(9))).unwrap(),
            (NodeId(7), NodeId(9))
        );
        assert_eq!(
            t.endpoints(Link::up(NodeId(0))).unwrap_err(),
            TopologyError::RootHasNoParent
        );
    }

    #[test]
    fn links_enumerates_all_non_root() {
        let t = fig1();
        let ups = t.links(Direction::Up);
        assert_eq!(ups.len(), 11);
        assert!(ups.iter().all(|l| l.direction == Direction::Up));
    }

    #[test]
    #[should_panic(expected = "root cannot have a parent")]
    fn from_parents_rejects_root_child() {
        let _ = Tree::from_parents(&[(0, 1)]);
    }

    #[test]
    fn link_reversal() {
        let l = Link::up(NodeId(2));
        assert_eq!(l.reversed().direction, Direction::Down);
        assert_eq!(l.reversed().reversed(), l);
        assert_eq!(Direction::Up.reversed(), Direction::Down);
    }

    #[test]
    fn single_node_tree() {
        let t = TreeBuilder::new().build();
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.layers(), 0);
        assert!(t.links(Direction::Up).is_empty());
        assert_eq!(t.subtree_nodes(t.root()), vec![NodeId(0)]);
    }
}
