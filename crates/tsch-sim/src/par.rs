//! Deterministic fork-join helpers over OS threads.
//!
//! Used by the sharded simulator to execute subtree shards concurrently and
//! by the experiment harness for parameter sweeps. Result order never
//! depends on OS scheduling, so parallel runs are byte-identical to serial
//! ones.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread count for parallel work: the `HARP_BENCH_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism (1 if that cannot be determined).
#[must_use]
pub fn bench_threads() -> usize {
    if let Ok(v) = std::env::var("HARP_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on `threads` OS threads.
///
/// The result order is the item order — identical to a serial
/// `items.iter().map(...)` — no matter how the OS schedules the workers:
/// each worker tags results with the item index and the merged output is
/// sorted by it. Work is distributed by an atomic cursor, so uneven item
/// costs balance across threads.
///
/// # Panics
///
/// Propagates a panic from `f` (the panicking worker's join fails).
pub fn par_map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::with_capacity(items.len());
        for handle in handles {
            all.extend(handle.join().expect("parallel worker panicked"));
        }
        all
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map_with_threads`] with the default [`bench_threads`] count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with_threads(items, bench_threads(), f)
}

/// Runs `f` on every item, in place, on `threads` OS threads.
///
/// Items are dealt round-robin to workers up front (no work stealing —
/// callers have few, similarly sized items, e.g. one simulator shard per
/// subtree). Each item is visited exactly once with exclusive access, so
/// for independent items the outcome is identical to a serial
/// `iter_mut` pass.
///
/// # Panics
///
/// Propagates a panic from `f` (the panicking worker's join fails).
pub fn par_for_each_mut_with_threads<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.iter_mut().enumerate() {
        buckets[i % threads].push((i, item));
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(|| {
                for (i, item) in bucket {
                    f(i, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map_in_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 8, 200] {
            let parallel = par_map_with_threads(&items, threads, |i, &x| x * 3 + i as u64);
            assert_eq!(parallel, serial, "threads={threads}");
        }
        assert_eq!(par_map(&items, |i, &x| x * 3 + i as u64), serial);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(
            par_map_with_threads(&[] as &[u8], 4, |_, &x| x),
            Vec::<u8>::new()
        );
        assert_eq!(
            par_map_with_threads(&[9u8], 4, |i, &x| (i, x)),
            vec![(0, 9)]
        );
    }

    #[test]
    fn par_map_balances_uneven_work_deterministically() {
        let items: Vec<u64> = (0..40).collect();
        let out = par_map_with_threads(&items, 4, |_, &x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(out, (1..=40).collect::<Vec<u64>>());
    }

    #[test]
    fn par_for_each_mut_visits_every_item_once() {
        for threads in [1, 2, 3, 16] {
            let mut items: Vec<u64> = (0..23).collect();
            par_for_each_mut_with_threads(&mut items, threads, |i, x| {
                *x = *x * 2 + i as u64;
            });
            let expected: Vec<u64> = (0..23).map(|x| x * 3).collect();
            assert_eq!(items, expected, "threads={threads}");
        }
    }
}
