//! Deterministic fork-join helpers over OS threads.
//!
//! Used by the sharded simulator to execute subtree shards concurrently and
//! by the experiment harness for parameter sweeps. Result order never
//! depends on OS scheduling, so parallel runs are byte-identical to serial
//! ones.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count for parallel work: the `HARP_BENCH_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism (1 if that cannot be determined).
#[must_use]
pub fn bench_threads() -> usize {
    if let Ok(v) = std::env::var("HARP_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on `threads` OS threads.
///
/// The result order is the item order — identical to a serial
/// `items.iter().map(...)` — no matter how the OS schedules the workers:
/// each worker tags results with the item index and the merged output is
/// sorted by it. Work is distributed by an atomic cursor, so uneven item
/// costs balance across threads.
///
/// # Panics
///
/// Propagates a panic from `f` (the panicking worker's join fails).
pub fn par_map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::with_capacity(items.len());
        for handle in handles {
            all.extend(handle.join().expect("parallel worker panicked"));
        }
        all
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map_with_threads`] with the default [`bench_threads`] count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with_threads(items, bench_threads(), f)
}

/// Runs `f` on every item, in place, on `threads` OS threads with work
/// stealing.
///
/// Each worker is dealt a contiguous chunk of item indices up front and
/// drains it from the front; a worker whose own deque runs dry steals the
/// back half of the fullest remaining victim's deque. The items themselves
/// live behind per-item mutexed slots taken exactly once, so every item is
/// visited exactly once with exclusive access and — for independent items —
/// the outcome is identical to a serial `iter_mut` pass regardless of how
/// stealing interleaves. No `unsafe` is involved; the slot mutexes are
/// uncontended in the common case, so the overhead is one lock/unlock per
/// item.
///
/// # Panics
///
/// Propagates a panic from `f` (the panicking worker's join fails).
pub fn par_for_each_mut_with_threads<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let len = items.len();
    // One slot per item: taking the Option guarantees single execution even
    // if a stale index were ever observed twice.
    let slots: Vec<Mutex<Option<(usize, &mut T)>>> = items
        .iter_mut()
        .enumerate()
        .map(|(i, item)| Mutex::new(Some((i, item))))
        .collect();
    // Deal contiguous chunks so each worker starts on a cache-friendly
    // range; stealing rebalances uneven chunk costs.
    let chunk = len.div_ceil(threads);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let lo = (w * chunk).min(len);
            let hi = ((w + 1) * chunk).min(len);
            Mutex::new((lo..hi).collect())
        })
        .collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let slots = &slots;
            let queues = &queues;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first, front to back.
                let mut next = queues[w].lock().expect("queue poisoned").pop_front();
                if next.is_none() {
                    // Steal the back half of the fullest victim.
                    let victim = (0..queues.len())
                        .filter(|&v| v != w)
                        .map(|v| (v, queues[v].lock().expect("queue poisoned").len()))
                        .max_by_key(|&(_, len)| len)
                        .filter(|&(_, len)| len > 0)
                        .map(|(v, _)| v);
                    if let Some(v) = victim {
                        let mut theirs = queues[v].lock().expect("queue poisoned");
                        let keep = theirs.len() - theirs.len() / 2;
                        let stolen = theirs.split_off(keep);
                        drop(theirs);
                        if !stolen.is_empty() {
                            let mut mine = queues[w].lock().expect("queue poisoned");
                            *mine = stolen;
                            next = mine.pop_front();
                        }
                    }
                }
                let Some(i) = next else { break };
                if let Some((idx, item)) = slots[i].lock().expect("slot poisoned").take() {
                    f(idx, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map_in_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 8, 200] {
            let parallel = par_map_with_threads(&items, threads, |i, &x| x * 3 + i as u64);
            assert_eq!(parallel, serial, "threads={threads}");
        }
        assert_eq!(par_map(&items, |i, &x| x * 3 + i as u64), serial);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(
            par_map_with_threads(&[] as &[u8], 4, |_, &x| x),
            Vec::<u8>::new()
        );
        assert_eq!(
            par_map_with_threads(&[9u8], 4, |i, &x| (i, x)),
            vec![(0, 9)]
        );
    }

    #[test]
    fn par_map_balances_uneven_work_deterministically() {
        let items: Vec<u64> = (0..40).collect();
        let out = par_map_with_threads(&items, 4, |_, &x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(out, (1..=40).collect::<Vec<u64>>());
    }

    #[test]
    fn par_for_each_mut_steals_across_skewed_chunks() {
        // All the heavy items land in worker 0's contiguous chunk; the
        // other workers' chunks drain instantly and must steal. Whatever
        // the interleaving, every item is visited exactly once.
        for threads in [2, 4] {
            let mut items: Vec<u64> = (0..64).collect();
            let visits = AtomicUsize::new(0);
            par_for_each_mut_with_threads(&mut items, threads, |i, x| {
                if i < 16 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                visits.fetch_add(1, Ordering::Relaxed);
                *x += 100;
            });
            assert_eq!(visits.load(Ordering::Relaxed), 64, "threads={threads}");
            let expected: Vec<u64> = (100..164).collect();
            assert_eq!(items, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_for_each_mut_visits_every_item_once() {
        for threads in [1, 2, 3, 16] {
            let mut items: Vec<u64> = (0..23).collect();
            par_for_each_mut_with_threads(&mut items, threads, |i, x| {
                *x = *x * 2 + i as u64;
            });
            let expected: Vec<u64> = (0..23).map(|x| x * 3).collect();
            assert_eq!(items, expected, "threads={threads}");
        }
    }
}
