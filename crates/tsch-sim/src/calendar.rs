//! A time-ordered event calendar shared by the simulation layers.
//!
//! The event-driven engine, the management plane and the transport's
//! retransmission timers all need the same primitive: schedule a value to
//! fire at an absolute slot number, then drain everything due at or before
//! `now` in deterministic order. [`EventCalendar`] wraps a binary heap
//! keyed on `(fire_at, insertion_seq)`, so simultaneous events pop in the
//! order they were scheduled — the FIFO-within-a-slot contract the
//! management plane's `same_slot_messages_fifo_by_seq` test pins.
//!
//! Cancellation is deliberately absent: callers that reschedule or drop
//! events (e.g. the transport layer when an ACK lands before the
//! retransmission timer fires) leave the stale entry in the heap and
//! validate on pop instead ("lazy deletion"). That keeps `schedule` and
//! `pop_due` at O(log n) with no auxiliary index.

use crate::time::Asn;
use std::collections::BinaryHeap;

/// One scheduled wakeup: fires at `at`, ties broken by insertion order.
#[derive(Debug)]
struct Entry<T> {
    at: Asn,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-heap of future wakeups ordered by `(fire_time, insertion_seq)`.
///
/// # Examples
///
/// ```
/// use tsch_sim::{Asn, EventCalendar};
///
/// let mut cal: EventCalendar<&str> = EventCalendar::new();
/// cal.schedule(Asn(5), "b");
/// cal.schedule(Asn(2), "a");
/// cal.schedule(Asn(5), "c");
/// assert_eq!(cal.pop_due(Asn(5)), Some((Asn(2), "a")));
/// assert_eq!(cal.pop_due(Asn(5)), Some((Asn(5), "b")));
/// assert_eq!(cal.pop_due(Asn(4)), None, "nothing else is due yet");
/// ```
#[derive(Debug)]
pub struct EventCalendar<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventCalendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventCalendar<T> {
    /// An empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Registers `value` to fire at `at`. Events scheduled for the same
    /// instant fire in registration order.
    pub fn schedule(&mut self, at: Asn, value: T) {
        self.heap.push(Entry {
            at,
            seq: self.seq,
            value,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event due at or before `now`, or
    /// `None` when the head (if any) is still in the future.
    pub fn pop_due(&mut self, now: Asn) -> Option<(Asn, T)> {
        if self.heap.peek()?.at > now {
            return None;
        }
        let entry = self.heap.pop().expect("peeked element exists");
        Some((entry.at, entry.value))
    }

    /// The earliest scheduled fire time, if any.
    #[must_use]
    pub fn next_fire(&self) -> Option<Asn> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of scheduled events (including stale, lazily deleted ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every scheduled event. The insertion counter keeps running,
    /// so events scheduled after the clear still order after anything
    /// popped before it.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut cal = EventCalendar::new();
        cal.schedule(Asn(10), 'c');
        cal.schedule(Asn(3), 'a');
        cal.schedule(Asn(10), 'd');
        cal.schedule(Asn(3), 'b');
        let mut out = Vec::new();
        while let Some((at, v)) = cal.pop_due(Asn(100)) {
            out.push((at.0, v));
        }
        assert_eq!(out, vec![(3, 'a'), (3, 'b'), (10, 'c'), (10, 'd')]);
        assert!(cal.is_empty());
    }

    #[test]
    fn future_events_stay_put() {
        let mut cal = EventCalendar::new();
        cal.schedule(Asn(7), ());
        assert_eq!(cal.next_fire(), Some(Asn(7)));
        assert_eq!(cal.pop_due(Asn(6)), None);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop_due(Asn(7)), Some((Asn(7), ())));
    }

    #[test]
    fn clear_preserves_ordering_across_generations() {
        let mut cal = EventCalendar::new();
        cal.schedule(Asn(5), 1u32);
        cal.clear();
        assert!(cal.is_empty());
        cal.schedule(Asn(5), 2u32);
        cal.schedule(Asn(5), 3u32);
        assert_eq!(cal.pop_due(Asn(5)), Some((Asn(5), 2)));
        assert_eq!(cal.pop_due(Asn(5)), Some((Asn(5), 3)));
    }
}
