//! The straightforward map-based simulation engine, kept as a differential
//! oracle.
//!
//! [`ReferenceSimulator`] is the pre-optimization formulation of the engine:
//! per-link queues live in a `BTreeMap<Link, VecDeque<_>>`, every
//! (slot, channel) pair probes [`NetworkSchedule::links_on`], and the
//! interference model is consulted pairwise on every occupied cell. It is
//! deliberately simple and obviously faithful to the TSCH semantics the
//! optimised [`Simulator`](crate::Simulator) implements.
//!
//! Two consumers rely on it:
//!
//! * the `dense_vs_reference` regression test, which checks that the dense
//!   fast path in [`Simulator`](crate::Simulator) is observationally
//!   identical (same RNG stream, same stats, same trace) on arbitrary
//!   scenarios;
//! * the simulator benchmark, which reports the dense engine's speedup
//!   over this baseline.
//!
//! It supports exactly the features those consumers need: tasks, PDR
//! losses, retries, bounded queues, runtime schedule mutation. Defaults for
//! queue capacity and retry limit match the real engine's.

use crate::interference::{InterferenceModel, TwoHopInterference};
use crate::packet::{Packet, Task, TaskId};
use crate::radio::LinkQuality;
use crate::rng::SplitMix64;
use crate::schedule::NetworkSchedule;
use crate::stats::SimStats;
use crate::time::{Asn, Cell, SlotframeConfig};
use crate::topology::{Direction, Link, NodeId, Tree};
use crate::trace::TraceEvent;
use crate::{DEFAULT_MAX_RETRIES, DEFAULT_QUEUE_CAPACITY};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// The map-based oracle engine. See the module docs.
#[derive(Debug)]
pub struct ReferenceSimulator {
    tree: Tree,
    config: SlotframeConfig,
    schedule: NetworkSchedule,
    interference: TwoHopInterference,
    quality: LinkQuality,
    tasks: Vec<(Task, Arc<[NodeId]>, u64)>,
    queues: BTreeMap<Link, VecDeque<(Packet, u32)>>,
    now: Asn,
    rng: SplitMix64,
    stats: SimStats,
    trace: Vec<TraceEvent>,
}

impl ReferenceSimulator {
    /// Builds the oracle at ASN 0 with two-hop interference and the
    /// engine's default queue capacity and retry limit.
    ///
    /// # Panics
    ///
    /// Panics if a task's source is outside the tree (its route would be
    /// empty).
    #[must_use]
    pub fn new(
        tree: Tree,
        config: SlotframeConfig,
        schedule: NetworkSchedule,
        quality: LinkQuality,
        seed: u64,
        tasks: &[Task],
    ) -> Self {
        let interference = TwoHopInterference::from_tree(&tree);
        let tasks = tasks
            .iter()
            .map(|t| (t.clone(), Arc::<[NodeId]>::from(t.route(&tree)), 0u64))
            .collect();
        Self {
            tree,
            config,
            schedule,
            interference,
            quality,
            tasks,
            queues: BTreeMap::new(),
            now: Asn::ZERO,
            rng: SplitMix64::new(seed),
            stats: SimStats::new(),
            trace: Vec::new(),
        }
    }

    /// Replaces the interference model (builder-style), e.g. to add extra
    /// radio edges beyond the routing tree.
    #[must_use]
    pub fn with_interference(mut self, interference: TwoHopInterference) -> Self {
        self.interference = interference;
        self
    }

    /// Collected measurements so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Every trace event so far, unbounded.
    #[must_use]
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Mutable access to the schedule (for runtime reconfiguration).
    #[must_use]
    pub fn schedule_mut(&mut self) -> &mut NetworkSchedule {
        &mut self.schedule
    }

    /// Advances the simulation by `n` whole slotframes.
    pub fn run_slotframes(&mut self, n: u64) {
        for _ in 0..n * u64::from(self.config.slots) {
            self.step_slot();
        }
    }

    /// Executes exactly one slot.
    pub fn step_slot(&mut self) {
        if self.config.slot_offset(self.now) == 0 {
            self.release_tasks();
            self.sample_queue_depths();
        }
        let slot = self.config.slot_offset(self.now);
        for channel in 0..self.config.channels {
            self.execute_cell(Cell::new(slot, channel));
        }
        self.stats.slots_simulated += 1;
        self.now = self.now.plus(1);
    }

    fn release_tasks(&mut self) {
        let frame = self.config.slotframe_index(self.now);
        let mut releases: Vec<(Arc<[NodeId]>, TaskId, u64, u32)> = Vec::new();
        for (task, route, next_seq) in &mut self.tasks {
            let n = task.rate.packets_in_slotframe(frame);
            if n > 0 {
                releases.push((route.clone(), task.id, *next_seq, n));
                *next_seq += u64::from(n);
            }
        }
        for (route, task, seq0, n) in releases {
            for k in 0..u64::from(n) {
                self.stats.generated += 1;
                let packet = Packet::new(task, seq0 + k, self.now, route.clone());
                if packet.is_delivered() {
                    self.stats
                        .record_delivery(packet.holder(), self.now, self.now);
                } else {
                    self.enqueue(packet);
                }
            }
        }
    }

    fn next_link(&self, packet: &Packet) -> Link {
        let holder = packet.holder();
        let next = packet.next_hop().expect("packet not delivered");
        if self.tree.parent(holder) == Some(next) {
            Link::up(holder)
        } else if self.tree.parent(next) == Some(holder) {
            Link::down(next)
        } else {
            panic!("route hop {holder}->{next} is not a tree edge");
        }
    }

    fn enqueue(&mut self, packet: Packet) {
        let link = self.next_link(&packet);
        let queue = self.queues.entry(link).or_default();
        if queue.len() >= DEFAULT_QUEUE_CAPACITY {
            self.stats.queue_drops += 1;
        } else {
            queue.push_back((packet, 0));
        }
    }

    fn execute_cell(&mut self, cell: Cell) {
        let active: Vec<Link> = self
            .schedule
            .links_on(cell)
            .iter()
            .copied()
            .filter(|l| self.queues.get(l).is_some_and(|q| !q.is_empty()))
            .collect();
        if active.is_empty() {
            return;
        }
        self.stats.tx_attempts += active.len() as u64;
        for &link in &active {
            self.stats.record_tx_attempt(link);
        }
        let mut collided = vec![false; active.len()];
        for i in 0..active.len() {
            for j in i + 1..active.len() {
                if self
                    .interference
                    .conflicts(&self.tree, active[i], active[j])
                {
                    collided[i] = true;
                    collided[j] = true;
                }
            }
        }
        for (idx, &link) in active.iter().enumerate() {
            if collided[idx] {
                self.stats.collisions += 1;
                self.trace.push(TraceEvent::TxCollision {
                    at: self.now,
                    link,
                    cell,
                });
                self.fail_head(link);
                continue;
            }
            let pdr = self.quality.pdr(link);
            if pdr < 1.0 && !self.rng.chance(pdr) {
                self.stats.losses += 1;
                self.trace.push(TraceEvent::TxLoss {
                    at: self.now,
                    link,
                    cell,
                });
                self.fail_head(link);
                continue;
            }
            self.trace.push(TraceEvent::TxOk {
                at: self.now,
                link,
                cell,
            });
            self.deliver_head(link);
        }
    }

    fn fail_head(&mut self, link: Link) {
        let queue = self.queues.get_mut(&link).expect("active link has a queue");
        let head = queue.front_mut().expect("active link queue is non-empty");
        head.1 += 1;
        if head.1 > DEFAULT_MAX_RETRIES {
            queue.pop_front();
            self.stats.queue_drops += 1;
            self.trace.push(TraceEvent::Drop { at: self.now, link });
        }
    }

    fn deliver_head(&mut self, link: Link) {
        let queue = self.queues.get_mut(&link).expect("active link has a queue");
        let (mut packet, _) = queue.pop_front().expect("active link queue is non-empty");
        packet.advance();
        if packet.is_delivered() {
            self.stats
                .record_delivery(packet.route[0], packet.created, self.now.plus(1));
        } else {
            self.enqueue(packet);
        }
    }

    fn sample_queue_depths(&mut self) {
        let mut per_node: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (link, queue) in &self.queues {
            if queue.is_empty() {
                continue;
            }
            let sender = match link.direction {
                Direction::Up => self.tree.parent(link.child).map(|_| link.child),
                Direction::Down => self.tree.parent(link.child),
            };
            if let Some(sender) = sender {
                *per_node.entry(sender).or_default() += queue.len();
            }
        }
        for (node, depth) in per_node {
            self.stats.record_queue_depth(node, depth);
        }
    }
}
