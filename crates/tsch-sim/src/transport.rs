//! Transport layer for the management plane: confirmable envelopes, loss
//! models and CoAP-style reliability.
//!
//! The paper's testbed runs HARP over CoAP confirmable messages (§VI-A): a
//! control message can be lost like any other frame, so the endpoints
//! acknowledge, retransmit with exponential backoff and suppress duplicates.
//! [`ControlPlane`] reproduces that sublayer on top of [`MgmtPlane`]:
//!
//! * every payload travels in an [`Envelope`] (`Con` carrying data, `Ack`
//!   confirming a `msg_id`/`token` pair);
//! * a pluggable [`Transport`] decides the fate of each transmission —
//!   [`Reliable`] (every frame arrives, the pre-transport behaviour),
//!   [`Lossy`] (per-hop Bernoulli drops from a [`LinkQuality`] PDR model,
//!   seeded) and [`Chaos`] (drops + duplicates + delays, for robustness
//!   tests);
//! * ACKs piggyback on the next occurrence of the reverse management cell:
//!   they share the cell with regular traffic, cost no airtime accounting
//!   and do not serialise behind queued messages;
//! * unacknowledged `Con`s are retransmitted from the sender's management
//!   cell after a timeout measured in slotframes, doubling up to a cap,
//!   until a retry budget is exhausted ([`MgmtError::RetriesExhausted`]);
//! * receivers keep a per-neighbour sliding msg-id window so re-delivered
//!   `Con`s are acknowledged again but never handed to the application
//!   twice.
//!
//! With a lossless transport the sublayer disengages entirely: no envelope
//! ids, no ACKs, no timers — deliveries are bit-for-bit identical to the
//! plain [`MgmtPlane`], which keeps the paper-reproduction reports stable.

use crate::calendar::EventCalendar;
use crate::mgmt::{Delivered, MgmtError, MgmtPlane};
use crate::radio::{LinkQuality, PdrError};
use crate::rng::SplitMix64;
use crate::time::{Asn, SlotframeConfig};
use crate::topology::{Link, NodeId, Tree};
use core::fmt;
use harp_obs::{CounterId, MetricsSnapshot, Obs};
use std::collections::{BTreeMap, BTreeSet};

/// Pre-registered metric handles for the reliability sublayer.
#[derive(Debug, Clone, Copy)]
struct TransportObsIds {
    attempts: CounterId,
    retransmissions: CounterId,
    acks_sent: CounterId,
    dropped: CounterId,
    duplicates_suppressed: CounterId,
}

impl TransportObsIds {
    fn register(obs: &mut Obs) -> Self {
        Self {
            attempts: obs.metrics.counter("transport.attempts"),
            retransmissions: obs.metrics.counter("transport.retransmissions"),
            acks_sent: obs.metrics.counter("transport.acks_sent"),
            dropped: obs.metrics.counter("transport.dropped"),
            duplicates_suppressed: obs.metrics.counter("transport.duplicates_suppressed"),
        }
    }
}

/// Whether an envelope carries data or confirms receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeKind {
    /// A confirmable message carrying a payload.
    Con,
    /// An acknowledgement of a previously received `Con`.
    Ack,
}

/// The unit the transport layer moves: a payload (or an acknowledgement)
/// plus the identifiers the reliability sublayer needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Per-sender-receiver-pair message id, assigned densely in send order;
    /// the receiver's duplicate-suppression window tracks these.
    pub msg_id: u64,
    /// Plane-wide unique exchange token matching an ACK to its `Con`.
    pub token: u64,
    /// Data or acknowledgement.
    pub kind: EnvelopeKind,
    /// The payload (`Some` for `Con`, `None` for `Ack`).
    pub payload: Option<M>,
}

/// What happened to one transmission attempt on the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxFate {
    /// The frame reached the receiver.
    pub delivered: bool,
    /// The receiver heard the frame twice (only meaningful when delivered).
    pub duplicated: bool,
    /// Extra slots of propagation/processing delay before the receiver
    /// processes the frame.
    pub delay_slots: u64,
}

impl TxFate {
    /// A clean single delivery with no delay.
    pub const DELIVERED: TxFate = TxFate {
        delivered: true,
        duplicated: false,
        delay_slots: 0,
    };
}

/// A channel model for management-cell transmissions.
///
/// Implementations must be deterministic given their construction seed: the
/// reliability layer draws exactly one fate per transmission attempt, in a
/// deterministic order, so a fixed seed reproduces the identical run.
pub trait Transport: fmt::Debug + Send + Sync {
    /// The fate of one transmission attempt on `link`.
    fn fate(&mut self, link: Link) -> TxFate;

    /// Returns `true` if every attempt is guaranteed to be a clean delivery.
    /// Lossless transports bypass the reliability sublayer entirely (no
    /// ACKs, no timers, no envelope ids).
    fn is_lossless(&self) -> bool {
        false
    }
}

/// The ideal channel: every transmission arrives exactly once, on time.
///
/// This is the pre-transport behaviour of the management plane; all
/// paper-reproduction experiments use it unless they study loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Reliable;

impl Transport for Reliable {
    fn fate(&mut self, _link: Link) -> TxFate {
        TxFate::DELIVERED
    }

    fn is_lossless(&self) -> bool {
        true
    }
}

/// Bernoulli loss per hop, driven by the data plane's [`LinkQuality`] PDR
/// model and a seeded [`SplitMix64`].
///
/// # Examples
///
/// ```
/// use tsch_sim::{Link, Lossy, NodeId, Transport};
///
/// let mut t = Lossy::uniform(0.5, 42).unwrap();
/// let fate = t.fate(Link::up(NodeId(3)));
/// assert!(!fate.duplicated);
/// assert_eq!(fate.delay_slots, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Lossy {
    quality: LinkQuality,
    rng: SplitMix64,
}

impl Lossy {
    /// A lossy channel with per-link PDRs from `quality`.
    #[must_use]
    pub fn new(quality: LinkQuality, seed: u64) -> Self {
        Self {
            quality,
            rng: SplitMix64::new(seed),
        }
    }

    /// A uniform PDR on every management hop.
    ///
    /// # Errors
    ///
    /// Returns [`PdrError`] if `pdr` is outside `[0, 1]`.
    pub fn uniform(pdr: f64, seed: u64) -> Result<Self, PdrError> {
        Ok(Self::new(LinkQuality::uniform(pdr)?, seed))
    }
}

impl Transport for Lossy {
    fn fate(&mut self, link: Link) -> TxFate {
        TxFate {
            delivered: self.rng.chance(self.quality.pdr(link)),
            duplicated: false,
            delay_slots: 0,
        }
    }
}

/// Adversarial channel for robustness tests: independent seeded drop,
/// duplicate and delay processes on every transmission.
#[derive(Debug, Clone)]
pub struct Chaos {
    rng: SplitMix64,
    drop: f64,
    duplicate: f64,
    delay: f64,
    max_delay_slots: u64,
}

impl Chaos {
    /// A chaos channel dropping with probability `drop`, duplicating with
    /// probability `duplicate` and delaying (uniformly up to
    /// `max_delay_slots`) with probability `delay`.
    #[must_use]
    pub fn new(seed: u64, drop: f64, duplicate: f64, delay: f64, max_delay_slots: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            drop,
            duplicate,
            delay,
            max_delay_slots,
        }
    }
}

impl Transport for Chaos {
    fn fate(&mut self, _link: Link) -> TxFate {
        // Draw all three processes unconditionally so the stream consumed
        // per attempt is fixed and runs stay reproducible.
        let delivered = !self.rng.chance(self.drop);
        let duplicated = self.rng.chance(self.duplicate);
        let delayed = self.rng.chance(self.delay);
        TxFate {
            delivered,
            duplicated,
            delay_slots: if delayed && self.max_delay_slots > 0 {
                self.rng.next_below(self.max_delay_slots + 1)
            } else {
                0
            },
        }
    }
}

/// Tuning of the reliability sublayer, in slotframe units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Initial retransmission timeout, counted from the `Con`'s scheduled
    /// arrival. Two slotframes cover the worst-case ACK return trip (the
    /// reverse management cell is at most one slotframe away).
    pub ack_timeout_slotframes: u64,
    /// How many retransmissions before the sender gives up with
    /// [`MgmtError::RetriesExhausted`].
    pub max_retransmissions: u32,
    /// Upper bound of the exponential backoff.
    pub max_backoff_slotframes: u64,
    /// Size of the per-neighbour duplicate-suppression msg-id window.
    pub dedup_window: u64,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        Self {
            ack_timeout_slotframes: 2,
            max_retransmissions: 12,
            max_backoff_slotframes: 16,
            dedup_window: 64,
        }
    }
}

/// Monotonic counters of the reliability sublayer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Transmission attempts (first sends + retransmissions) of `Con`s.
    pub attempts: u64,
    /// Retransmissions among the attempts.
    pub retransmissions: u64,
    /// ACKs generated by receivers.
    pub acks_sent: u64,
    /// Transmissions (`Con` or `Ack`) lost to the channel.
    pub dropped: u64,
    /// Re-delivered `Con`s suppressed by the receiver's msg-id window.
    pub duplicates_suppressed: u64,
}

/// Sliding per-neighbour msg-id window: everything below `floor` was
/// observed; ids at or above it are looked up in `seen`.
#[derive(Debug, Clone, Default)]
struct DedupWindow {
    floor: u64,
    seen: BTreeSet<u64>,
}

impl DedupWindow {
    /// Records `id`; returns `true` if it was fresh (first observation).
    fn observe(&mut self, id: u64, window: u64) -> bool {
        if id < self.floor || !self.seen.insert(id) {
            return false;
        }
        // Advance the floor over the contiguous prefix, then clamp the
        // window so state stays bounded.
        while self.seen.remove(&self.floor) {
            self.floor += 1;
        }
        if let Some(&max) = self.seen.iter().next_back() {
            let min_keep = max.saturating_sub(window.saturating_sub(1));
            if self.floor < min_keep {
                self.floor = min_keep;
                self.seen = self.seen.split_off(&min_keep);
            }
        }
        true
    }
}

/// A `Con` awaiting its ACK, with its retransmission timer.
#[derive(Debug, Clone)]
struct OutstandingCon<M> {
    token: u64,
    msg_id: u64,
    from: NodeId,
    to: NodeId,
    payload: M,
    retries_left: u32,
    backoff_slotframes: u64,
    next_retry_at: Asn,
}

/// The management plane wrapped in a transport: envelopes, loss, ACKs,
/// retransmissions and duplicate suppression.
///
/// # Examples
///
/// ```
/// use tsch_sim::{Asn, ControlPlane, NodeId, Reliable, SlotframeConfig, Tree};
///
/// # fn main() -> Result<(), tsch_sim::MgmtError> {
/// let tree = Tree::paper_fig1_example();
/// let mut plane: ControlPlane<&str> =
///     ControlPlane::reliable(&tree, SlotframeConfig::paper_default());
/// let at = plane.send(&tree, Asn(0), NodeId(4), NodeId(1), "request")?;
/// let delivered = plane.poll(&tree, at)?;
/// assert_eq!(delivered[0].payload, "request");
/// assert!(plane.is_idle());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ControlPlane<M> {
    config: SlotframeConfig,
    reliability: ReliabilityConfig,
    transport: Box<dyn Transport>,
    /// Cached `transport.is_lossless()`: lossless transports bypass the
    /// reliability sublayer entirely.
    lossless: bool,
    plane: MgmtPlane<Envelope<M>>,
    outstanding: Vec<OutstandingCon<M>>,
    /// Retransmission wakeups (token keyed by fire time). Entries are never
    /// cancelled: an ACK or a reschedule leaves a stale entry behind, and
    /// [`ControlPlane::run_retransmission_timers`] validates each popped
    /// token against the live `outstanding` state instead (lazy deletion).
    retry_timers: EventCalendar<u64>,
    next_token: u64,
    /// Next msg id per directed `(sender, receiver)` pair.
    next_msg_id: BTreeMap<(NodeId, NodeId), u64>,
    /// Receiver-side dedup windows per directed `(sender, receiver)` pair.
    windows: BTreeMap<(NodeId, NodeId), DedupWindow>,
    stats: TransportStats,
    obs: Obs,
    obs_ids: TransportObsIds,
}

/// The directed management hop a `from → to` transmission crosses.
fn hop_link(tree: &Tree, from: NodeId, to: NodeId) -> Result<Link, MgmtError> {
    if tree.parent(from) == Some(to) {
        Ok(Link::up(from))
    } else if tree.parent(to) == Some(from) {
        Ok(Link::down(to))
    } else {
        Err(MgmtError::NotNeighbors { from, to })
    }
}

impl<M: Clone> ControlPlane<M> {
    /// Builds a control plane over `transport` with default reliability
    /// tuning.
    #[must_use]
    pub fn new(tree: &Tree, config: SlotframeConfig, transport: Box<dyn Transport>) -> Self {
        let lossless = transport.is_lossless();
        let mut obs = Obs::disabled();
        let obs_ids = TransportObsIds::register(&mut obs);
        Self {
            config,
            reliability: ReliabilityConfig::default(),
            transport,
            lossless,
            plane: MgmtPlane::new(tree, config),
            outstanding: Vec::new(),
            retry_timers: EventCalendar::new(),
            next_token: 0,
            next_msg_id: BTreeMap::new(),
            windows: BTreeMap::new(),
            stats: TransportStats::default(),
            obs,
            obs_ids,
        }
    }

    /// A control plane over the ideal channel (the pre-transport behaviour).
    #[must_use]
    pub fn reliable(tree: &Tree, config: SlotframeConfig) -> Self {
        Self::new(tree, config, Box::new(Reliable))
    }

    /// Replaces the reliability tuning (builder style).
    #[must_use]
    pub fn with_reliability(mut self, reliability: ReliabilityConfig) -> Self {
        self.reliability = reliability;
        self
    }

    /// Replaces the reliability tuning in place. Affects only messages sent
    /// after the call; already-outstanding `Con`s keep their timers.
    pub fn set_reliability(&mut self, reliability: ReliabilityConfig) {
        self.reliability = reliability;
    }

    /// Registers one more node, assigning it fresh management cells.
    pub fn add_node(&mut self) -> NodeId {
        self.plane.add_node()
    }

    /// Total management transmissions (first sends and retransmissions;
    /// piggybacked ACKs are free) — the overhead metric of Table II and
    /// Fig. 12.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.plane.messages_sent()
    }

    /// Envelopes currently in flight (including ACKs and duplicates).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.plane.in_flight()
    }

    /// `Con`s sent but not yet acknowledged.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Nothing in flight and nothing awaiting an ACK.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.plane.in_flight() == 0 && self.outstanding.is_empty()
    }

    /// Counters accumulated since construction (monotonic; snapshot and
    /// subtract to meter a window).
    #[must_use]
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Enables the observability layer, retaining the most recent
    /// `span_capacity` spans (retransmissions and duplicate suppressions).
    /// Off by default; counters mirror [`TransportStats`] exactly.
    pub fn enable_observability(&mut self, span_capacity: usize) {
        let mut obs = Obs::enabled(span_capacity);
        self.obs_ids = TransportObsIds::register(&mut obs);
        self.obs = obs;
    }

    /// The observability handle (disabled unless
    /// [`ControlPlane::enable_observability`] was called).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Sets the ambient correlation id stamped onto transport spans
    /// (retransmissions, duplicate suppressions) until the next call —
    /// [`harp_obs::NO_CORRELATION`] clears it. Lets a service stitch the
    /// retransmissions a request caused to that request's id.
    pub fn set_correlation(&mut self, corr: u64) {
        self.obs.set_correlation(corr);
    }

    /// Snapshots the transport metrics (empty while observability is off).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.metrics.snapshot()
    }

    /// Sends `payload` from `from` to its tree neighbour `to` as a
    /// confirmable message, drawing its fate from the transport. Returns
    /// the ASN of the transmission's management cell (the arrival time if
    /// the frame survives the channel).
    ///
    /// # Errors
    ///
    /// Returns [`MgmtError::NotNeighbors`] unless `to` is `from`'s parent or
    /// child.
    pub fn send(
        &mut self,
        tree: &Tree,
        now: Asn,
        from: NodeId,
        to: NodeId,
        payload: M,
    ) -> Result<Asn, MgmtError> {
        let link = hop_link(tree, from, to)?;
        let deliver_at = self.plane.transmit_time(tree, now, from, to)?;
        self.stats.attempts += 1;
        self.obs.metrics.inc(self.obs_ids.attempts, 1);
        if self.lossless {
            self.plane.enqueue_raw(
                deliver_at,
                from,
                to,
                Envelope {
                    msg_id: 0,
                    token: 0,
                    kind: EnvelopeKind::Con,
                    payload: Some(payload),
                },
            );
            return Ok(deliver_at);
        }
        let msg_id = {
            let next = self.next_msg_id.entry((from, to)).or_insert(0);
            let id = *next;
            *next += 1;
            id
        };
        let token = self.next_token;
        self.next_token += 1;
        let fate = self.transport.fate(link);
        let envelope = Envelope {
            msg_id,
            token,
            kind: EnvelopeKind::Con,
            payload: Some(payload.clone()),
        };
        self.deliver_per_fate(fate, deliver_at, from, to, envelope);
        let next_retry_at =
            deliver_at.plus(self.reliability.ack_timeout_slotframes * u64::from(self.config.slots));
        self.outstanding.push(OutstandingCon {
            token,
            msg_id,
            from,
            to,
            payload,
            retries_left: self.reliability.max_retransmissions,
            backoff_slotframes: self.reliability.ack_timeout_slotframes,
            next_retry_at,
        });
        self.retry_timers.schedule(next_retry_at, token);
        Ok(deliver_at)
    }

    /// Enqueues `envelope` according to `fate` (possibly dropping it, adding
    /// delay, or delivering a second copy one slotframe later).
    fn deliver_per_fate(
        &mut self,
        fate: TxFate,
        deliver_at: Asn,
        from: NodeId,
        to: NodeId,
        envelope: Envelope<M>,
    ) {
        if !fate.delivered {
            self.stats.dropped += 1;
            self.obs.metrics.inc(self.obs_ids.dropped, 1);
            return;
        }
        if fate.duplicated {
            self.plane.enqueue_raw(
                deliver_at
                    .plus(fate.delay_slots)
                    .plus(u64::from(self.config.slots)),
                from,
                to,
                envelope.clone(),
            );
        }
        self.plane
            .enqueue_raw(deliver_at.plus(fate.delay_slots), from, to, envelope);
    }

    /// Delivers every due fresh payload (ASN ≤ `now`), consuming ACKs,
    /// acknowledging and deduplicating `Con`s, then firing due
    /// retransmission timers.
    ///
    /// # Errors
    ///
    /// Returns [`MgmtError::RetriesExhausted`] when a `Con` runs out of
    /// retransmissions (the neighbour is effectively unreachable).
    pub fn poll(&mut self, tree: &Tree, now: Asn) -> Result<Vec<Delivered<M>>, MgmtError> {
        let mut out = Vec::new();
        for d in self.plane.poll(now) {
            let envelope = d.payload;
            match envelope.kind {
                EnvelopeKind::Ack => {
                    self.outstanding.retain(|o| o.token != envelope.token);
                }
                EnvelopeKind::Con => {
                    let payload = envelope.payload.expect("Con envelopes carry a payload");
                    if self.lossless {
                        out.push(Delivered {
                            from: d.from,
                            to: d.to,
                            at: d.at,
                            payload,
                        });
                        continue;
                    }
                    // Acknowledge every received copy — the ACK for the
                    // original may have been the frame that got lost.
                    self.send_ack(tree, d.at, d.to, d.from, envelope.msg_id, envelope.token)?;
                    let fresh = self
                        .windows
                        .entry((d.from, d.to))
                        .or_default()
                        .observe(envelope.msg_id, self.reliability.dedup_window);
                    if fresh {
                        out.push(Delivered {
                            from: d.from,
                            to: d.to,
                            at: d.at,
                            payload,
                        });
                    } else {
                        self.stats.duplicates_suppressed += 1;
                        self.obs.metrics.inc(self.obs_ids.duplicates_suppressed, 1);
                        self.obs.span(
                            "dup_suppressed",
                            "transport",
                            d.to.0,
                            tree.depth(d.to),
                            d.at.0,
                            d.at.0,
                            1,
                        );
                    }
                }
            }
        }
        self.run_retransmission_timers(tree, now)?;
        Ok(out)
    }

    /// Emits an ACK for (`msg_id`, `token`) from `from` back to `to`,
    /// piggybacked on the next reverse management cell after `received_at`.
    fn send_ack(
        &mut self,
        tree: &Tree,
        received_at: Asn,
        from: NodeId,
        to: NodeId,
        msg_id: u64,
        token: u64,
    ) -> Result<(), MgmtError> {
        let ack_at = self.plane.peek_transmit_time(tree, received_at, from, to)?;
        self.stats.acks_sent += 1;
        self.obs.metrics.inc(self.obs_ids.acks_sent, 1);
        let fate = self.transport.fate(hop_link(tree, from, to)?);
        if fate.delivered {
            self.plane.enqueue_raw(
                ack_at.plus(fate.delay_slots),
                from,
                to,
                Envelope {
                    msg_id,
                    token,
                    kind: EnvelopeKind::Ack,
                    payload: None,
                },
            );
        } else {
            self.stats.dropped += 1;
            self.obs.metrics.inc(self.obs_ids.dropped, 1);
        }
        Ok(())
    }

    /// Retransmits every timed-out `Con`, backing off exponentially;
    /// removes (and reports) exchanges whose retry budget is exhausted.
    ///
    /// Driven by the wakeup calendar: only tokens with a due wakeup are
    /// examined, instead of the old full scan over every outstanding
    /// exchange per poll. Due tokens fire in ascending token order — the
    /// order the scan used, since `outstanding` always stays sorted by
    /// token (tokens are assigned monotonically and removals keep order) —
    /// so the transport RNG stream and cell occupations are unchanged.
    fn run_retransmission_timers(&mut self, tree: &Tree, now: Asn) -> Result<(), MgmtError> {
        let mut due: Vec<u64> = Vec::new();
        while let Some((_, token)) = self.retry_timers.pop_due(now) {
            due.push(token);
        }
        if due.is_empty() {
            return Ok(());
        }
        due.sort_unstable();
        due.dedup();
        let mut exhausted: Option<(NodeId, NodeId)> = None;
        for token in due {
            let Ok(i) = self.outstanding.binary_search_by_key(&token, |o| o.token) else {
                continue; // ACKed or cancelled before the timer fired.
            };
            if self.outstanding[i].next_retry_at > now {
                continue; // Stale wakeup: the exchange was rescheduled.
            }
            if self.outstanding[i].retries_left == 0 {
                let o = self.outstanding.remove(i);
                exhausted.get_or_insert((o.from, o.to));
                continue;
            }
            let (from, to, msg_id, payload) = {
                let o = &self.outstanding[i];
                (o.from, o.to, o.msg_id, o.payload.clone())
            };
            let deliver_at = self.plane.transmit_time(tree, now, from, to)?;
            self.stats.attempts += 1;
            self.stats.retransmissions += 1;
            self.obs.metrics.inc(self.obs_ids.attempts, 1);
            self.obs.metrics.inc(self.obs_ids.retransmissions, 1);
            self.obs.span(
                "retx",
                "transport",
                from.0,
                tree.depth(from),
                now.0,
                deliver_at.0,
                i64::from(self.outstanding[i].retries_left),
            );
            let fate = self.transport.fate(hop_link(tree, from, to)?);
            self.deliver_per_fate(
                fate,
                deliver_at,
                from,
                to,
                Envelope {
                    msg_id,
                    token,
                    kind: EnvelopeKind::Con,
                    payload: Some(payload),
                },
            );
            let backoff_cap = self.reliability.max_backoff_slotframes;
            let o = &mut self.outstanding[i];
            o.retries_left -= 1;
            o.backoff_slotframes = (o.backoff_slotframes * 2).min(backoff_cap);
            o.next_retry_at = deliver_at.plus(o.backoff_slotframes * u64::from(self.config.slots));
            self.retry_timers.schedule(o.next_retry_at, token);
        }
        if let Some((from, to)) = exhausted {
            return Err(MgmtError::RetriesExhausted { from, to });
        }
        Ok(())
    }

    /// The earliest ASN at which something happens: a pending delivery or a
    /// retransmission timer. Drive [`ControlPlane::poll`] to these instants
    /// to fast-forward through idle slots.
    #[must_use]
    pub fn next_event(&self) -> Option<Asn> {
        let delivery = self.plane.next_delivery();
        let retry = self.outstanding.iter().map(|o| o.next_retry_at).min();
        match (delivery, retry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Drops every in-flight envelope and cancels every retransmission
    /// timer (a transactional rollback). Dedup windows and msg-id counters
    /// survive, so post-cancel traffic cannot collide with pre-cancel ids;
    /// counters are unaffected.
    pub fn cancel_in_flight(&mut self) {
        self.plane.clear_in_flight();
        self.outstanding.clear();
        self.retry_timers.clear();
    }

    /// Rebuilds the underlying plane for (possibly new) `tree`/`config`,
    /// clearing all reliability state but keeping the transport — and with
    /// it the seeded random stream — and the cumulative stats.
    pub fn reset(&mut self, tree: &Tree, config: SlotframeConfig) {
        self.config = config;
        self.plane = MgmtPlane::new(tree, config);
        self.outstanding.clear();
        self.retry_timers.clear();
        self.next_msg_id.clear();
        self.windows.clear();
        self.next_token = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Tree {
        Tree::paper_fig1_example()
    }

    fn cfg() -> SlotframeConfig {
        SlotframeConfig::new(20, 4, 10_000).unwrap()
    }

    /// A transport that pops scripted fates (and delivers cleanly once the
    /// script runs out).
    #[derive(Debug)]
    struct Scripted {
        fates: Vec<TxFate>,
    }

    impl Scripted {
        fn new(mut fates: Vec<TxFate>) -> Self {
            fates.reverse();
            Self { fates }
        }

        fn drop_first(n: usize) -> Self {
            Self::new(vec![
                TxFate {
                    delivered: false,
                    duplicated: false,
                    delay_slots: 0
                };
                n
            ])
        }
    }

    impl Transport for Scripted {
        fn fate(&mut self, _link: Link) -> TxFate {
            self.fates.pop().unwrap_or(TxFate::DELIVERED)
        }
    }

    /// Drains the plane event by event, returning all payload deliveries.
    fn drain(plane: &mut ControlPlane<u32>, tree: &Tree) -> Vec<Delivered<u32>> {
        let mut out = Vec::new();
        while let Some(at) = plane.next_event() {
            out.extend(plane.poll(tree, at).unwrap());
        }
        out
    }

    #[test]
    fn reliable_matches_plain_mgmt_plane() {
        let t = tree();
        let mut plain: MgmtPlane<u32> = MgmtPlane::new(&t, cfg());
        let mut wrapped: ControlPlane<u32> = ControlPlane::reliable(&t, cfg());
        let sends = [
            (NodeId(9), NodeId(7), 1u32),
            (NodeId(4), NodeId(1), 2),
            (NodeId(9), NodeId(7), 3),
            (NodeId(1), NodeId(4), 4),
        ];
        for &(from, to, m) in &sends {
            let a = plain.send(&t, Asn(0), from, to, m).unwrap();
            let b = wrapped.send(&t, Asn(0), from, to, m).unwrap();
            assert_eq!(a, b, "identical cell timing");
        }
        let got_plain = plain.poll(Asn(1000));
        let got_wrapped = wrapped.poll(&t, Asn(1000)).unwrap();
        assert_eq!(got_plain.len(), got_wrapped.len());
        for (p, w) in got_plain.iter().zip(&got_wrapped) {
            assert_eq!(
                (p.from, p.to, p.at, p.payload),
                (w.from, w.to, w.at, w.payload)
            );
        }
        assert_eq!(plain.messages_sent(), wrapped.messages_sent());
        assert!(wrapped.is_idle(), "no ACKs outstanding on lossless");
        assert_eq!(wrapped.stats().acks_sent, 0);
        assert_eq!(wrapped.stats().retransmissions, 0);
    }

    #[test]
    fn lossy_at_full_pdr_matches_reliable_deliveries() {
        let t = tree();
        let mut reliable: ControlPlane<u32> = ControlPlane::reliable(&t, cfg());
        let mut lossy: ControlPlane<u32> =
            ControlPlane::new(&t, cfg(), Box::new(Lossy::uniform(1.0, 7).unwrap()));
        for &(from, to, m) in &[(NodeId(9), NodeId(7), 1u32), (NodeId(1), NodeId(0), 2)] {
            reliable.send(&t, Asn(0), from, to, m).unwrap();
            lossy.send(&t, Asn(0), from, to, m).unwrap();
        }
        let a = drain(&mut reliable, &t);
        let b = drain(&mut lossy, &t);
        assert_eq!(a, b, "PDR 1.0 delivers the same payloads at the same ASNs");
        assert_eq!(lossy.stats().retransmissions, 0);
        assert_eq!(lossy.stats().dropped, 0);
        assert!(lossy.is_idle(), "all ACKs returned");
        assert_eq!(lossy.stats().acks_sent, 2);
    }

    #[test]
    fn dropped_con_is_retransmitted_and_delivered_once() {
        let t = tree();
        let mut plane: ControlPlane<u32> =
            ControlPlane::new(&t, cfg(), Box::new(Scripted::drop_first(1)));
        plane.send(&t, Asn(0), NodeId(9), NodeId(7), 42).unwrap();
        let delivered = drain(&mut plane, &t);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, 42);
        assert_eq!(plane.stats().retransmissions, 1);
        assert_eq!(plane.stats().dropped, 1);
        assert!(plane.is_idle());
        assert_eq!(plane.messages_sent(), 2, "both attempts cost airtime");
    }

    #[test]
    fn dropped_ack_causes_duplicate_which_is_suppressed() {
        let t = tree();
        // Fates drawn in order: con (ok), ack (dropped), retransmitted con
        // (ok), second ack (ok).
        let mut plane: ControlPlane<u32> = ControlPlane::new(
            &t,
            cfg(),
            Box::new(Scripted::new(vec![
                TxFate::DELIVERED,
                TxFate {
                    delivered: false,
                    duplicated: false,
                    delay_slots: 0,
                },
            ])),
        );
        plane.send(&t, Asn(0), NodeId(9), NodeId(7), 5).unwrap();
        let delivered = drain(&mut plane, &t);
        assert_eq!(delivered.len(), 1, "application sees the payload once");
        assert_eq!(plane.stats().retransmissions, 1);
        assert_eq!(plane.stats().duplicates_suppressed, 1);
        assert_eq!(plane.stats().acks_sent, 2, "every copy is re-acked");
        assert!(plane.is_idle());
    }

    #[test]
    fn chaos_duplicate_is_suppressed() {
        let t = tree();
        let mut plane: ControlPlane<u32> = ControlPlane::new(
            &t,
            cfg(),
            Box::new(Scripted::new(vec![TxFate {
                delivered: true,
                duplicated: true,
                delay_slots: 0,
            }])),
        );
        plane.send(&t, Asn(0), NodeId(9), NodeId(7), 8).unwrap();
        let delivered = drain(&mut plane, &t);
        assert_eq!(delivered.len(), 1);
        assert_eq!(plane.stats().duplicates_suppressed, 1);
        assert!(plane.is_idle());
    }

    #[test]
    fn retries_exhausted_surfaces_as_error() {
        let t = tree();
        let blackhole = Scripted::new(vec![
            TxFate {
                delivered: false,
                duplicated: false,
                delay_slots: 0
            };
            64
        ]);
        let mut plane: ControlPlane<u32> = ControlPlane::new(&t, cfg(), Box::new(blackhole))
            .with_reliability(ReliabilityConfig {
                max_retransmissions: 3,
                ..ReliabilityConfig::default()
            });
        plane.send(&t, Asn(0), NodeId(9), NodeId(7), 1).unwrap();
        let mut last = Ok(Vec::new());
        while let Some(at) = plane.next_event() {
            last = plane.poll(&t, at);
            if last.is_err() {
                break;
            }
        }
        assert_eq!(
            last.unwrap_err(),
            MgmtError::RetriesExhausted {
                from: NodeId(9),
                to: NodeId(7)
            }
        );
        assert_eq!(plane.stats().retransmissions, 3);
    }

    #[test]
    fn backoff_doubles_up_to_cap() {
        let t = tree();
        let slots = u64::from(cfg().slots);
        let blackhole = Scripted::new(vec![
            TxFate {
                delivered: false,
                duplicated: false,
                delay_slots: 0
            };
            64
        ]);
        let mut plane: ControlPlane<u32> = ControlPlane::new(&t, cfg(), Box::new(blackhole))
            .with_reliability(ReliabilityConfig {
                ack_timeout_slotframes: 1,
                max_retransmissions: 5,
                max_backoff_slotframes: 4,
                dedup_window: 64,
            });
        plane.send(&t, Asn(0), NodeId(9), NodeId(7), 1).unwrap();
        let mut timer_gaps = Vec::new();
        let mut prev = None;
        while let Some(at) = plane.next_event() {
            if let Some(p) = prev {
                timer_gaps.push((at.0 - p) / slots);
            }
            prev = Some(at.0);
            if plane.poll(&t, at).is_err() {
                break;
            }
        }
        // Gaps between retransmission timers follow the doubling backoff
        // capped at 4 slotframes, plus the one frame it takes the
        // retransmitted frame to reach the next cell occurrence.
        assert_eq!(timer_gaps, vec![3, 5, 5, 5, 5]);
    }

    #[test]
    fn cancel_in_flight_clears_timers_and_queue() {
        let t = tree();
        let mut plane: ControlPlane<u32> =
            ControlPlane::new(&t, cfg(), Box::new(Lossy::uniform(0.5, 3).unwrap()));
        for i in 0..4 {
            plane.send(&t, Asn(0), NodeId(9), NodeId(7), i).unwrap();
        }
        assert!(!plane.is_idle());
        plane.cancel_in_flight();
        assert!(plane.is_idle());
        assert_eq!(plane.next_event(), None);
    }

    #[test]
    fn dedup_window_slides_and_stays_bounded() {
        let mut w = DedupWindow::default();
        for id in 0..200 {
            assert!(w.observe(id, 8), "id {id} is fresh");
            assert!(!w.observe(id, 8), "id {id} re-observed");
        }
        assert!(w.seen.len() <= 8);
        // Out-of-order arrivals within the window are tracked exactly.
        let mut w = DedupWindow::default();
        assert!(w.observe(2, 8));
        assert!(w.observe(0, 8));
        assert!(!w.observe(0, 8));
        assert!(w.observe(1, 8));
        assert!(!w.observe(2, 8));
        // Anything below the advanced floor reads as duplicate.
        let mut w = DedupWindow::default();
        for id in 0..20 {
            w.observe(id, 4);
        }
        assert!(!w.observe(3, 4));
    }

    #[test]
    fn lossy_is_deterministic_per_seed() {
        let t = tree();
        let run = |seed: u64| {
            let mut plane: ControlPlane<u32> =
                ControlPlane::new(&t, cfg(), Box::new(Lossy::uniform(0.6, seed).unwrap()));
            for i in 0..6 {
                plane
                    .send(&t, Asn(i), NodeId(9), NodeId(7), i as u32)
                    .unwrap();
            }
            let delivered = drain(&mut plane, &t);
            (delivered, plane.stats(), plane.messages_sent())
        };
        assert_eq!(run(11), run(11), "same seed, same trace");
        let (a, ..) = run(11);
        assert_eq!(a.len(), 6, "reliability recovers every payload");
    }

    #[test]
    fn chaos_transport_draws_are_deterministic() {
        let mut a = Chaos::new(9, 0.2, 0.2, 0.5, 7);
        let mut b = Chaos::new(9, 0.2, 0.2, 0.5, 7);
        for _ in 0..100 {
            assert_eq!(a.fate(Link::up(NodeId(1))), b.fate(Link::up(NodeId(1))));
        }
    }
}
