//! The network communication schedule: which link may transmit in which cell.
//!
//! A [`NetworkSchedule`] is the global view of all cell assignments in one
//! slotframe. HARP guarantees at most one link per cell; the baseline
//! schedulers (random, MSF, LDSF) do not, so the table supports multiple
//! links per cell and exposes collision analysis over an
//! [`InterferenceModel`](crate::InterferenceModel).

use crate::interference::InterferenceModel;
use crate::time::{Cell, SlotframeConfig};
use crate::topology::{Link, Tree};
use core::fmt;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide monotone counter backing [`NetworkSchedule::version`].
///
/// Starts at 1 so version 0 is reserved for freshly created (empty)
/// schedules: two schedules share a version only when they have identical
/// contents (both empty, or clones of the same mutation point), which is
/// exactly the property the simulator's cache keying relies on.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

/// Errors raised by schedule mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The cell lies outside the slotframe bounds.
    CellOutOfBounds {
        /// The offending cell.
        cell: Cell,
        /// Slotframe slot count.
        slots: u32,
        /// Slotframe channel count.
        channels: u16,
    },
    /// The link is already assigned to this cell.
    DuplicateAssignment {
        /// The cell in question.
        cell: Cell,
        /// The link already present.
        link: Link,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::CellOutOfBounds {
                cell,
                slots,
                channels,
            } => write!(
                f,
                "cell {cell} outside slotframe of {slots} slots x {channels} channels"
            ),
            ScheduleError::DuplicateAssignment { cell, link } => {
                write!(f, "link {link} already assigned to cell {cell}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Summary of the collision analysis of a schedule.
///
/// The *collision probability* reproduced in Fig. 11 of the paper is
/// `colliding_assignments / total_assignments`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollisionReport {
    /// Total number of (cell, link) assignments in the schedule.
    pub total_assignments: usize,
    /// Assignments that conflict with at least one other assignment on the
    /// same cell under the chosen interference model.
    pub colliding_assignments: usize,
    /// Number of distinct cells where at least one conflict occurs.
    pub colliding_cells: usize,
}

impl CollisionReport {
    /// Fraction of assignments that collide, in `[0, 1]`; `0` for an empty
    /// schedule.
    #[must_use]
    pub fn collision_probability(&self) -> f64 {
        if self.total_assignments == 0 {
            0.0
        } else {
            self.colliding_assignments as f64 / self.total_assignments as f64
        }
    }
}

/// A slotframe-wide table of cell assignments.
///
/// # Examples
///
/// ```
/// use tsch_sim::{Cell, Link, NetworkSchedule, NodeId, SlotframeConfig};
///
/// # fn main() -> Result<(), tsch_sim::ScheduleError> {
/// let cfg = SlotframeConfig::paper_default();
/// let mut schedule = NetworkSchedule::new(cfg);
/// schedule.assign(Cell::new(0, 0), Link::up(NodeId(1)))?;
/// assert_eq!(schedule.cells_of(Link::up(NodeId(1))), &[Cell::new(0, 0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetworkSchedule {
    config: SlotframeConfig,
    by_cell: BTreeMap<Cell, Vec<Link>>,
    by_link: BTreeMap<Link, Vec<Cell>>,
    version: u64,
}

impl NetworkSchedule {
    /// Creates an empty schedule for the given slotframe.
    #[must_use]
    pub fn new(config: SlotframeConfig) -> Self {
        Self {
            config,
            by_cell: BTreeMap::new(),
            by_link: BTreeMap::new(),
            version: 0,
        }
    }

    /// The slotframe configuration this schedule belongs to.
    #[must_use]
    pub fn config(&self) -> SlotframeConfig {
        self.config
    }

    /// An opaque mutation counter.
    ///
    /// Every successful [`assign`](Self::assign),
    /// [`unassign_link`](Self::unassign_link) or [`clear`](Self::clear)
    /// stamps the schedule with a fresh process-unique version, so a cached
    /// derivation (such as the simulator's per-slot table) is valid exactly
    /// while the version it was built from still matches. Clones share
    /// their origin's version; fresh empty schedules are version 0.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    fn bump_version(&mut self) {
        self.version = NEXT_VERSION.fetch_add(1, Ordering::Relaxed);
    }

    /// Assigns `link` to `cell`. Multiple links may share a cell (that is
    /// exactly what the baseline schedulers do); the same link may not be
    /// assigned to the same cell twice.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::CellOutOfBounds`] if the cell exceeds the slotframe;
    /// [`ScheduleError::DuplicateAssignment`] on a repeated (cell, link) pair.
    pub fn assign(&mut self, cell: Cell, link: Link) -> Result<(), ScheduleError> {
        if !self.config.contains_cell(cell) {
            return Err(ScheduleError::CellOutOfBounds {
                cell,
                slots: self.config.slots,
                channels: self.config.channels,
            });
        }
        let links = self.by_cell.entry(cell).or_default();
        if links.contains(&link) {
            return Err(ScheduleError::DuplicateAssignment { cell, link });
        }
        links.push(link);
        self.by_link.entry(link).or_default().push(cell);
        self.bump_version();
        Ok(())
    }

    /// Removes every cell assigned to `link`; returns how many were removed.
    pub fn unassign_link(&mut self, link: Link) -> usize {
        let Some(cells) = self.by_link.remove(&link) else {
            return 0;
        };
        for cell in &cells {
            if let Some(links) = self.by_cell.get_mut(cell) {
                links.retain(|&l| l != link);
                if links.is_empty() {
                    self.by_cell.remove(cell);
                }
            }
        }
        self.bump_version();
        cells.len()
    }

    /// The cells currently assigned to `link`, in assignment order.
    #[must_use]
    pub fn cells_of(&self, link: Link) -> &[Cell] {
        self.by_link.get(&link).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The links assigned to `cell`.
    #[must_use]
    pub fn links_on(&self, cell: Cell) -> &[Link] {
        self.by_cell.get(&cell).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all (cell, links) entries in cell order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (Cell, &[Link])> + '_ {
        self.by_cell.iter().map(|(&c, ls)| (c, ls.as_slice()))
    }

    /// Iterates over all (link, cells) entries in link order.
    pub fn iter_links(&self) -> impl Iterator<Item = (Link, &[Cell])> + '_ {
        self.by_link.iter().map(|(&l, cs)| (l, cs.as_slice()))
    }

    /// Total number of (cell, link) assignments — per-slotframe
    /// transmission opportunities. The event-driven engine's work per
    /// slotframe tracks this count (plus queued retransmissions), not the
    /// node count, so the scale study reports throughput per assignment
    /// ("active cell"). Distinct cells would undercount: non-conflicting
    /// links may share a cell, and the sharing density grows with size.
    #[must_use]
    pub fn assignment_count(&self) -> usize {
        self.by_link.values().map(Vec::len).sum()
    }

    /// Number of distinct cells with at least one assigned link — the
    /// schedule's cell footprint in the slotframe matrix.
    #[must_use]
    pub fn active_cells(&self) -> usize {
        self.by_cell.len()
    }

    /// Returns `true` if no cell hosts more than one link — HARP's invariant.
    #[must_use]
    pub fn is_exclusive(&self) -> bool {
        self.by_cell.values().all(|ls| ls.len() <= 1)
    }

    /// Cells assigned to more than one link.
    #[must_use]
    pub fn shared_cells(&self) -> Vec<Cell> {
        self.by_cell
            .iter()
            .filter(|(_, ls)| ls.len() > 1)
            .map(|(&c, _)| c)
            .collect()
    }

    /// Analyses collisions under an interference model.
    ///
    /// An assignment collides when at least one other link on the same cell
    /// conflicts with it; every member of a conflicting pair is counted.
    pub fn collision_report<M: InterferenceModel + ?Sized>(
        &self,
        tree: &Tree,
        model: &M,
    ) -> CollisionReport {
        let mut report = CollisionReport {
            total_assignments: self.assignment_count(),
            ..CollisionReport::default()
        };
        for links in self.by_cell.values() {
            if links.len() < 2 {
                continue;
            }
            let mut colliding = vec![false; links.len()];
            for i in 0..links.len() {
                for j in i + 1..links.len() {
                    if model.conflicts(tree, links[i], links[j]) {
                        colliding[i] = true;
                        colliding[j] = true;
                    }
                }
            }
            let n = colliding.iter().filter(|&&c| c).count();
            if n > 0 {
                report.colliding_cells += 1;
                report.colliding_assignments += n;
            }
        }
        report
    }

    /// Clears every assignment, keeping the configuration.
    pub fn clear(&mut self) {
        self.by_cell.clear();
        self.by_link.clear();
        self.bump_version();
    }

    /// Restores previously captured link rows — the rollback primitive
    /// behind journaled transactions (see `HarpNetwork`'s undo journal).
    ///
    /// Each `(link, cells)` pair is a before-image taken with
    /// [`cells_of`](Self::cells_of) prior to mutating that link: whatever
    /// the link holds now is removed and the captured cells are
    /// reinstated in their original order. `version` is the value
    /// [`version`](Self::version) returned when the first row was
    /// captured; it is restored verbatim (no fresh version is minted), so
    /// a journaled rollback is indistinguishable — version included —
    /// from swapping in a clone taken at the same point.
    ///
    /// The restore reproduces the pre-image exactly as long as no
    /// restored link shared a cell with a link that was *not* captured —
    /// always true for exclusive schedules (HARP's invariant), where a
    /// cell hosts at most one link.
    pub fn restore_rows<'a>(
        &mut self,
        rows: impl IntoIterator<Item = (Link, &'a [Cell])>,
        version: u64,
    ) {
        for (link, cells) in rows {
            // Drop whatever the aborted transaction left on this link.
            if let Some(current) = self.by_link.remove(&link) {
                for cell in &current {
                    if let Some(links) = self.by_cell.get_mut(cell) {
                        links.retain(|&l| l != link);
                        if links.is_empty() {
                            self.by_cell.remove(cell);
                        }
                    }
                }
            }
            if cells.is_empty() {
                continue;
            }
            for &cell in cells {
                self.by_cell.entry(cell).or_default().push(link);
            }
            self.by_link.insert(link, cells.to_vec());
        }
        self.version = version;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{GlobalInterference, TwoHopInterference};
    use crate::topology::NodeId;

    fn cfg() -> SlotframeConfig {
        SlotframeConfig::new(10, 4, 10_000).unwrap()
    }

    #[test]
    fn assign_and_lookup() {
        let mut s = NetworkSchedule::new(cfg());
        let link = Link::up(NodeId(1));
        s.assign(Cell::new(3, 2), link).unwrap();
        s.assign(Cell::new(5, 0), link).unwrap();
        assert_eq!(s.cells_of(link), &[Cell::new(3, 2), Cell::new(5, 0)]);
        assert_eq!(s.links_on(Cell::new(3, 2)), &[link]);
        assert_eq!(s.assignment_count(), 2);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut s = NetworkSchedule::new(cfg());
        let e = s.assign(Cell::new(10, 0), Link::up(NodeId(1))).unwrap_err();
        assert!(matches!(e, ScheduleError::CellOutOfBounds { .. }));
        let e = s.assign(Cell::new(0, 4), Link::up(NodeId(1))).unwrap_err();
        assert!(matches!(e, ScheduleError::CellOutOfBounds { .. }));
    }

    #[test]
    fn duplicate_pair_rejected_but_sharing_allowed() {
        let mut s = NetworkSchedule::new(cfg());
        let c = Cell::new(1, 1);
        s.assign(c, Link::up(NodeId(1))).unwrap();
        assert!(matches!(
            s.assign(c, Link::up(NodeId(1))).unwrap_err(),
            ScheduleError::DuplicateAssignment { .. }
        ));
        // A different link may share the cell.
        s.assign(c, Link::up(NodeId(2))).unwrap();
        assert_eq!(s.links_on(c).len(), 2);
        assert!(!s.is_exclusive());
        assert_eq!(s.shared_cells(), vec![c]);
    }

    #[test]
    fn unassign_removes_everywhere() {
        let mut s = NetworkSchedule::new(cfg());
        let link = Link::down(NodeId(3));
        s.assign(Cell::new(0, 0), link).unwrap();
        s.assign(Cell::new(1, 0), link).unwrap();
        assert_eq!(s.unassign_link(link), 2);
        assert!(s.cells_of(link).is_empty());
        assert!(s.links_on(Cell::new(0, 0)).is_empty());
        assert_eq!(s.assignment_count(), 0);
        assert_eq!(s.unassign_link(link), 0, "second removal is a no-op");
    }

    #[test]
    fn collision_report_global_model() {
        let tree = Tree::paper_fig1_example();
        let mut s = NetworkSchedule::new(cfg());
        let c = Cell::new(2, 2);
        s.assign(c, Link::up(NodeId(4))).unwrap();
        s.assign(c, Link::up(NodeId(9))).unwrap();
        s.assign(Cell::new(3, 3), Link::up(NodeId(5))).unwrap();
        let r = s.collision_report(&tree, &GlobalInterference);
        assert_eq!(r.total_assignments, 3);
        assert_eq!(r.colliding_assignments, 2);
        assert_eq!(r.colliding_cells, 1);
        assert!((r.collision_probability() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn collision_report_two_hop_model_spares_distant_links() {
        let tree = Tree::paper_fig1_example();
        let mut s = NetworkSchedule::new(cfg());
        let c = Cell::new(2, 2);
        // 4→1 and 9→7 are far apart: same cell but no interference.
        s.assign(c, Link::up(NodeId(4))).unwrap();
        s.assign(c, Link::up(NodeId(9))).unwrap();
        let model = TwoHopInterference::from_tree(&tree);
        let r = s.collision_report(&tree, &model);
        assert_eq!(r.colliding_assignments, 0);
        assert_eq!(r.collision_probability(), 0.0);
        // Same-parent links on one cell do collide.
        s.assign(c, Link::up(NodeId(5))).unwrap();
        s.assign(c, Link::up(NodeId(10))).unwrap();
        let r = s.collision_report(&tree, &model);
        // 4/5 share receiver 1; 9/10 share receiver 7. All four collide.
        assert_eq!(r.colliding_assignments, 4);
        assert_eq!(r.colliding_cells, 1);
    }

    #[test]
    fn empty_schedule_has_zero_probability() {
        let s = NetworkSchedule::new(cfg());
        let tree = Tree::paper_fig1_example();
        let r = s.collision_report(&tree, &GlobalInterference);
        assert_eq!(r.collision_probability(), 0.0);
        assert!(s.is_exclusive());
    }

    #[test]
    fn clear_resets() {
        let mut s = NetworkSchedule::new(cfg());
        s.assign(Cell::new(0, 0), Link::up(NodeId(1))).unwrap();
        s.clear();
        assert_eq!(s.assignment_count(), 0);
        assert!(s.iter_cells().next().is_none());
        assert!(s.iter_links().next().is_none());
    }

    #[test]
    fn version_changes_on_every_mutation() {
        let mut s = NetworkSchedule::new(cfg());
        assert_eq!(s.version(), 0, "fresh schedules are version 0");
        let v0 = s.version();
        s.assign(Cell::new(0, 0), Link::up(NodeId(1))).unwrap();
        let v1 = s.version();
        assert_ne!(v0, v1);
        // Failed mutations leave the version untouched.
        assert!(s.assign(Cell::new(0, 0), Link::up(NodeId(1))).is_err());
        assert_eq!(s.version(), v1);
        assert_eq!(s.unassign_link(Link::up(NodeId(9))), 0);
        assert_eq!(s.version(), v1);
        // Clones keep their origin's version until mutated themselves.
        let mut clone = s.clone();
        assert_eq!(clone.version(), v1);
        clone.clear();
        assert_ne!(clone.version(), v1);
        assert_eq!(s.version(), v1);
        s.unassign_link(Link::up(NodeId(1)));
        assert_ne!(s.version(), v1);
        assert_ne!(s.version(), clone.version(), "versions are process-unique");
    }

    #[test]
    fn restore_rows_reinstates_contents_and_version() {
        let mut s = NetworkSchedule::new(cfg());
        let a = Link::up(NodeId(1));
        let b = Link::up(NodeId(2));
        s.assign(Cell::new(0, 0), a).unwrap();
        s.assign(Cell::new(1, 0), a).unwrap();
        s.assign(Cell::new(2, 0), b).unwrap();
        let saved_version = s.version();
        let saved_a = s.cells_of(a).to_vec();
        let saved_b = s.cells_of(b).to_vec();
        let reference = s.clone();

        // Mutate both rows the way an aborted transaction would: move a,
        // wipe b, touch a third link that was never captured.
        s.unassign_link(a);
        s.assign(Cell::new(5, 1), a).unwrap();
        s.unassign_link(b);
        s.assign(Cell::new(6, 2), Link::down(NodeId(3))).unwrap();
        assert_ne!(s.version(), saved_version);

        s.restore_rows(
            [(a, saved_a.as_slice()), (b, saved_b.as_slice())],
            saved_version,
        );
        assert_eq!(s.cells_of(a), reference.cells_of(a));
        assert_eq!(s.cells_of(b), reference.cells_of(b));
        assert!(s.links_on(Cell::new(5, 1)).is_empty());
        // The uncaptured link survives untouched.
        assert_eq!(s.cells_of(Link::down(NodeId(3))), &[Cell::new(6, 2)]);
        assert_eq!(
            s.version(),
            saved_version,
            "restore reinstates the captured version instead of minting one"
        );
        // A row captured empty restores to empty.
        let mut t = NetworkSchedule::new(cfg());
        let v0 = t.version();
        t.assign(Cell::new(0, 0), a).unwrap();
        t.restore_rows([(a, &[][..])], v0);
        assert!(t.cells_of(a).is_empty());
        assert_eq!(t.assignment_count(), 0);
        assert_eq!(t.version(), v0);
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::CellOutOfBounds {
            cell: Cell::new(9, 9),
            slots: 5,
            channels: 2,
        };
        assert!(e.to_string().contains("outside"));
    }
}
