//! Management plane: one-hop delivery of network-management messages over
//! dedicated management cells.
//!
//! In the paper's testbed (§VI-A) every node joining the network is given
//! two collision-free cells in the Management sub-frame — one uplink, one
//! downlink — and all HARP messages (Table I) travel in those cells. The
//! consequence is the latency model reproduced here: a message from a node
//! to a one-hop neighbour departs at the sender's next management cell for
//! that direction, i.e. each hop costs up to one slotframe.
//!
//! The plane is generic over the payload type so `harp-core` can carry its
//! protocol messages and the APaS baseline its own, while sharing the same
//! timing and accounting semantics (message counts feed Table II and
//! Fig. 12).

use crate::calendar::EventCalendar;
use crate::time::{Asn, SlotframeConfig};
use crate::topology::{NodeId, Tree};
use core::fmt;

/// A message delivered by [`MgmtPlane::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered<M> {
    /// The sending neighbour.
    pub from: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// The ASN at which the message arrived.
    pub at: Asn,
    /// The message payload.
    pub payload: M,
}

/// Errors raised by the management plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MgmtError {
    /// Messages may only travel between tree neighbours (one hop).
    NotNeighbors {
        /// The sender.
        from: NodeId,
        /// The non-adjacent intended receiver.
        to: NodeId,
    },
    /// A confirmable message exhausted its retransmission budget without
    /// being acknowledged (the link is effectively down).
    RetriesExhausted {
        /// The sender that gave up.
        from: NodeId,
        /// The unreachable neighbour.
        to: NodeId,
    },
}

impl fmt::Display for MgmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgmtError::NotNeighbors { from, to } => {
                write!(f, "{from} and {to} are not tree neighbours")
            }
            MgmtError::RetriesExhausted { from, to } => {
                write!(f, "{from} gave up retransmitting to {to}")
            }
        }
    }
}

impl std::error::Error for MgmtError {}

/// An in-flight message's routing envelope; its delivery time and FIFO
/// tiebreak live in the [`EventCalendar`] that carries it.
#[derive(Debug)]
struct InFlight<M> {
    from: NodeId,
    to: NodeId,
    payload: M,
}

/// The management plane of a network: carries one-hop messages with
/// management-cell timing and counts every transmission.
///
/// # Examples
///
/// ```
/// use tsch_sim::{Asn, MgmtPlane, NodeId, SlotframeConfig, Tree};
///
/// # fn main() -> Result<(), tsch_sim::MgmtError> {
/// let tree = Tree::paper_fig1_example();
/// let mut plane: MgmtPlane<&str> =
///     MgmtPlane::new(&tree, SlotframeConfig::paper_default());
/// plane.send(&tree, Asn(0), NodeId(4), NodeId(1), "request")?;
/// // Nothing arrives before the sender's management cell.
/// assert!(plane.poll(Asn(0)).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MgmtPlane<M> {
    config: SlotframeConfig,
    /// Per-node slot offset of the uplink management cell.
    up_slot: Vec<u32>,
    /// Per-node slot offset of the downlink management cell (indexed by the
    /// *receiving child*).
    down_slot: Vec<u32>,
    /// Future deliveries registered as calendar wakeups; simultaneous
    /// deliveries fire in registration (seq) order.
    in_flight: EventCalendar<InFlight<M>>,
    /// Last used occurrence of each node's uplink management cell, to
    /// serialise messages: one message per cell per slotframe.
    up_busy_until: Vec<Asn>,
    /// Same for the downlink management cells (indexed by receiving child).
    down_busy_until: Vec<Asn>,
    sent: u64,
}

impl<M> MgmtPlane<M> {
    /// Creates a management plane, assigning each node an uplink and a
    /// downlink management cell spread over the slotframe (mirroring the
    /// Management sub-frame of the testbed).
    #[must_use]
    pub fn new(tree: &Tree, config: SlotframeConfig) -> Self {
        let n = tree.len();
        let channels = u32::from(config.channels).max(1);
        let mut up_slot = vec![0u32; n];
        let mut down_slot = vec![0u32; n];
        for i in 0..n {
            // Two management cells per node, packed across channels; the
            // resulting slots cycle through the slotframe deterministically.
            let up_index = 2 * i as u32;
            let down_index = 2 * i as u32 + 1;
            up_slot[i] = (up_index / channels) % config.slots;
            down_slot[i] = (down_index / channels) % config.slots;
        }
        Self {
            config,
            up_slot,
            down_slot,
            in_flight: EventCalendar::new(),
            up_busy_until: vec![Asn::ZERO; n],
            down_busy_until: vec![Asn::ZERO; n],
            sent: 0,
        }
    }

    /// Registers one more node (a device joining the network), assigning it
    /// the next pair of management cells. Returns the new node's id, which
    /// always equals the previous node count.
    pub fn add_node(&mut self) -> NodeId {
        let i = self.up_slot.len();
        let channels = u32::from(self.config.channels).max(1);
        self.up_slot
            .push(((2 * i as u32) / channels) % self.config.slots);
        self.down_slot
            .push(((2 * i as u32 + 1) / channels) % self.config.slots);
        self.up_busy_until.push(Asn::ZERO);
        self.down_busy_until.push(Asn::ZERO);
        NodeId(u32::try_from(i).expect("more than u32::MAX nodes"))
    }

    /// Total management messages transmitted so far — the overhead metric of
    /// Table II and Fig. 12.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Number of messages still in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Sends `payload` from `from` to its tree neighbour `to`.
    ///
    /// The message is delivered at the sender's next management cell for the
    /// appropriate direction, strictly after `now`. Returns the delivery ASN.
    ///
    /// # Errors
    ///
    /// Returns [`MgmtError::NotNeighbors`] unless `to` is `from`'s parent or
    /// child.
    pub fn send(
        &mut self,
        tree: &Tree,
        now: Asn,
        from: NodeId,
        to: NodeId,
        payload: M,
    ) -> Result<Asn, MgmtError> {
        let deliver_at = self.transmit_time(tree, now, from, to)?;
        self.enqueue_raw(deliver_at, from, to, payload);
        Ok(deliver_at)
    }

    /// Occupies the sender's next management cell for the `from → to` hop
    /// and counts one transmission, returning when that cell fires — without
    /// enqueuing anything. The transport layer decides what (if anything)
    /// actually arrives.
    ///
    /// # Errors
    ///
    /// Returns [`MgmtError::NotNeighbors`] unless `to` is `from`'s parent or
    /// child.
    pub(crate) fn transmit_time(
        &mut self,
        tree: &Tree,
        now: Asn,
        from: NodeId,
        to: NodeId,
    ) -> Result<Asn, MgmtError> {
        let (slot, busy_until) = if tree.parent(from) == Some(to) {
            (
                self.up_slot[from.index()],
                &mut self.up_busy_until[from.index()],
            )
        } else if tree.parent(to) == Some(from) {
            (
                self.down_slot[to.index()],
                &mut self.down_busy_until[to.index()],
            )
        } else {
            return Err(MgmtError::NotNeighbors { from, to });
        };
        // One message per cell occurrence: the departure must be strictly
        // after both `now` and the cell's previous use.
        let earliest = now.plus(1).max(busy_until.plus(1));
        let deliver_at = self.config.next_occurrence(earliest, slot);
        *busy_until = deliver_at;
        self.sent += 1;
        Ok(deliver_at)
    }

    /// When the next `from → to` management cell fires, strictly after
    /// `now`, *without* occupying it or counting a transmission. ACKs
    /// piggyback on this occurrence: they share the cell with regular
    /// traffic instead of serialising behind it.
    pub(crate) fn peek_transmit_time(
        &self,
        tree: &Tree,
        now: Asn,
        from: NodeId,
        to: NodeId,
    ) -> Result<Asn, MgmtError> {
        let slot = if tree.parent(from) == Some(to) {
            self.up_slot[from.index()]
        } else if tree.parent(to) == Some(from) {
            self.down_slot[to.index()]
        } else {
            return Err(MgmtError::NotNeighbors { from, to });
        };
        Ok(self.config.next_occurrence(now.plus(1), slot))
    }

    /// Enqueues a payload for delivery at `deliver_at`, bypassing cell
    /// accounting (the transport layer has already paid for the airtime via
    /// [`MgmtPlane::transmit_time`], or deliberately avoids paying for it,
    /// as piggybacked ACKs do).
    pub(crate) fn enqueue_raw(&mut self, deliver_at: Asn, from: NodeId, to: NodeId, payload: M) {
        self.in_flight
            .schedule(deliver_at, InFlight { from, to, payload });
    }

    /// Delivers every message whose time has come (deliver_at ≤ `now`), in
    /// delivery-time order.
    pub fn poll(&mut self, now: Asn) -> Vec<Delivered<M>> {
        let mut out = Vec::new();
        while let Some((at, m)) = self.in_flight.pop_due(now) {
            out.push(Delivered {
                from: m.from,
                to: m.to,
                at,
                payload: m.payload,
            });
        }
        out
    }

    /// Drops every in-flight message (used when a caller rolls back a
    /// failed protocol exchange). Counters are unaffected.
    pub fn clear_in_flight(&mut self) {
        self.in_flight.clear();
    }

    /// The earliest pending delivery time, if any — useful for fast-forward
    /// loops that skip idle slots.
    #[must_use]
    pub fn next_delivery(&self) -> Option<Asn> {
        self.in_flight.next_fire()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Tree {
        Tree::paper_fig1_example()
    }

    fn cfg() -> SlotframeConfig {
        SlotframeConfig::new(20, 4, 10_000).unwrap()
    }

    #[test]
    fn one_hop_send_and_poll() {
        let t = tree();
        let mut plane: MgmtPlane<u32> = MgmtPlane::new(&t, cfg());
        let at = plane.send(&t, Asn(0), NodeId(4), NodeId(1), 42).unwrap();
        assert!(at > Asn(0), "delivery strictly in the future");
        assert!(plane.poll(Asn(at.0 - 1)).is_empty());
        let delivered = plane.poll(at);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, 42);
        assert_eq!(delivered[0].from, NodeId(4));
        assert_eq!(delivered[0].to, NodeId(1));
        assert_eq!(plane.in_flight(), 0);
    }

    #[test]
    fn downlink_send_uses_child_slot() {
        let t = tree();
        let mut plane: MgmtPlane<&str> = MgmtPlane::new(&t, cfg());
        let at = plane
            .send(&t, Asn(5), NodeId(1), NodeId(4), "part")
            .unwrap();
        assert!(at > Asn(5));
        assert!(
            at.0 - 5 <= u64::from(cfg().slots),
            "at most one slotframe per hop"
        );
    }

    #[test]
    fn non_neighbours_rejected() {
        let t = tree();
        let mut plane: MgmtPlane<&str> = MgmtPlane::new(&t, cfg());
        assert_eq!(
            plane
                .send(&t, Asn(0), NodeId(4), NodeId(0), "x")
                .unwrap_err(),
            MgmtError::NotNeighbors {
                from: NodeId(4),
                to: NodeId(0)
            }
        );
        assert!(
            plane.send(&t, Asn(0), NodeId(4), NodeId(5), "x").is_err(),
            "siblings are not neighbours"
        );
    }

    #[test]
    fn message_count_accumulates() {
        let t = tree();
        let mut plane: MgmtPlane<u8> = MgmtPlane::new(&t, cfg());
        plane.send(&t, Asn(0), NodeId(4), NodeId(1), 1).unwrap();
        plane.send(&t, Asn(0), NodeId(1), NodeId(0), 2).unwrap();
        plane.send(&t, Asn(0), NodeId(0), NodeId(1), 3).unwrap();
        assert_eq!(plane.messages_sent(), 3);
        let _ = plane.poll(Asn(1000));
        assert_eq!(
            plane.messages_sent(),
            3,
            "polling does not change the count"
        );
    }

    #[test]
    fn deliveries_are_time_ordered() {
        let t = tree();
        let mut plane: MgmtPlane<u32> = MgmtPlane::new(&t, cfg());
        // Different senders have different management slots.
        plane.send(&t, Asn(0), NodeId(9), NodeId(7), 9).unwrap();
        plane.send(&t, Asn(0), NodeId(4), NodeId(1), 4).unwrap();
        plane.send(&t, Asn(0), NodeId(11), NodeId(8), 11).unwrap();
        let delivered = plane.poll(Asn(1000));
        assert_eq!(delivered.len(), 3);
        for pair in delivered.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn same_slot_messages_fifo_by_seq() {
        let t = tree();
        let mut plane: MgmtPlane<u32> = MgmtPlane::new(&t, cfg());
        // Two messages from the same sender to the same receiver: both use
        // the same slot; the first occupies the next frame, the second the
        // one after (they still deliver in send order).
        let a = plane.send(&t, Asn(0), NodeId(4), NodeId(1), 1).unwrap();
        let b = plane.send(&t, Asn(0), NodeId(4), NodeId(1), 2).unwrap();
        assert_eq!(b.0 - a.0, u64::from(cfg().slots), "one frame apart");
        let delivered = plane.poll(Asn(1000));
        assert_eq!(
            delivered.iter().map(|d| d.payload).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn next_delivery_exposes_earliest() {
        let t = tree();
        let mut plane: MgmtPlane<u32> = MgmtPlane::new(&t, cfg());
        assert!(plane.next_delivery().is_none());
        let at = plane.send(&t, Asn(0), NodeId(4), NodeId(1), 0).unwrap();
        assert_eq!(plane.next_delivery(), Some(at));
    }

    #[test]
    fn add_node_assigns_fresh_cells() {
        let t = tree();
        let mut plane: MgmtPlane<u8> = MgmtPlane::new(&t, cfg());
        let id = plane.add_node();
        assert_eq!(id, NodeId(12), "next dense id");
        // The grown tree can route to/from the new node.
        let (t2, new_id) = t.with_new_leaf(NodeId(9)).unwrap();
        assert_eq!(new_id, id);
        let at = plane.send(&t2, Asn(0), id, NodeId(9), 7).unwrap();
        let delivered = plane.poll(at);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, 7);
    }

    #[test]
    fn hop_latency_bounded_by_slotframe() {
        let t = tree();
        let cfg = cfg();
        for now in [0u64, 3, 7, 19, 20, 23] {
            // Fresh plane per sample: an idle management cell is at most one
            // slotframe away.
            let mut plane: MgmtPlane<u32> = MgmtPlane::new(&t, cfg);
            let at = plane.send(&t, Asn(now), NodeId(9), NodeId(7), 0).unwrap();
            assert!(at.0 > now);
            assert!(at.0 - now <= u64::from(cfg.slots));
        }
    }
}
