//! Structured event tracing for simulation runs.
//!
//! A [`TraceBuffer`] records the interesting events of a run — transmission
//! outcomes, deliveries, drops — in a bounded ring buffer, cheap enough to
//! leave enabled. Experiments use it to explain *why* a latency spike
//! happened (which link collided, where a packet was dropped) rather than
//! just observing that it did.

use crate::time::{Asn, Cell};
use crate::topology::Link;
use core::fmt;
use std::collections::VecDeque;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transmission succeeded on `link` in `cell`.
    TxOk {
        /// When it happened.
        at: Asn,
        /// The transmitting link.
        link: Link,
        /// The cell used.
        cell: Cell,
    },
    /// A transmission failed due to interference.
    TxCollision {
        /// When it happened.
        at: Asn,
        /// The transmitting link.
        link: Link,
        /// The cell used.
        cell: Cell,
    },
    /// A transmission failed due to the radio loss process.
    TxLoss {
        /// When it happened.
        at: Asn,
        /// The transmitting link.
        link: Link,
        /// The cell used.
        cell: Cell,
    },
    /// A packet was dropped (queue overflow or retry exhaustion).
    Drop {
        /// When it happened.
        at: Asn,
        /// The link whose queue dropped the packet.
        link: Link,
    },
}

impl TraceEvent {
    /// When the event happened.
    #[must_use]
    pub fn at(&self) -> Asn {
        match self {
            TraceEvent::TxOk { at, .. }
            | TraceEvent::TxCollision { at, .. }
            | TraceEvent::TxLoss { at, .. }
            | TraceEvent::Drop { at, .. } => *at,
        }
    }

    /// The link involved.
    #[must_use]
    pub fn link(&self) -> Link {
        match self {
            TraceEvent::TxOk { link, .. }
            | TraceEvent::TxCollision { link, .. }
            | TraceEvent::TxLoss { link, .. }
            | TraceEvent::Drop { link, .. } => *link,
        }
    }

    /// Returns `true` for failure events (collision, loss, drop).
    #[must_use]
    pub fn is_failure(&self) -> bool {
        !matches!(self, TraceEvent::TxOk { .. })
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::TxOk { at, link, cell } => write!(f, "{at} {link} TX ok {cell}"),
            TraceEvent::TxCollision { at, link, cell } => {
                write!(f, "{at} {link} TX collision {cell}")
            }
            TraceEvent::TxLoss { at, link, cell } => write!(f, "{at} {link} TX loss {cell}"),
            TraceEvent::Drop { at, link } => write!(f, "{at} {link} packet dropped"),
        }
    }
}

/// A bounded ring buffer of trace events.
///
/// # Examples
///
/// ```
/// use tsch_sim::{Asn, Cell, Link, NodeId, TraceBuffer, TraceEvent};
///
/// let mut trace = TraceBuffer::new(4);
/// trace.record(TraceEvent::TxOk {
///     at: Asn(3),
///     link: Link::up(NodeId(1)),
///     cell: Cell::new(3, 0),
/// });
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.failures().count(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    total_recorded: u64,
}

impl TraceBuffer {
    /// Creates a buffer keeping the most recent `capacity` events. A zero
    /// capacity disables recording entirely.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_recorded: 0,
        }
    }

    /// Records one event, evicting the oldest if full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.total_recorded += 1;
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Only the failure events (collisions, losses, drops).
    pub fn failures(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.is_failure())
    }

    /// Events touching one link.
    pub fn for_link(&self, link: Link) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.link() == link)
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Clears the retained events (the total counter keeps counting).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    fn ok(at: u64, node: u32) -> TraceEvent {
        TraceEvent::TxOk {
            at: Asn(at),
            link: Link::up(NodeId(node)),
            cell: Cell::new(0, 0),
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5 {
            t.record(ok(i, 1));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_recorded(), 5);
        let ats: Vec<u64> = t.iter().map(|e| e.at().0).collect();
        assert_eq!(ats, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut t = TraceBuffer::new(0);
        t.record(ok(0, 1));
        assert!(t.is_empty());
        assert_eq!(t.total_recorded(), 0);
    }

    #[test]
    fn failure_filter() {
        let mut t = TraceBuffer::new(10);
        t.record(ok(0, 1));
        t.record(TraceEvent::TxCollision {
            at: Asn(1),
            link: Link::up(NodeId(2)),
            cell: Cell::new(1, 0),
        });
        t.record(TraceEvent::Drop {
            at: Asn(2),
            link: Link::up(NodeId(2)),
        });
        assert_eq!(t.failures().count(), 2);
        assert!(t.failures().all(TraceEvent::is_failure));
    }

    #[test]
    fn link_filter() {
        let mut t = TraceBuffer::new(10);
        t.record(ok(0, 1));
        t.record(ok(1, 2));
        t.record(ok(2, 1));
        assert_eq!(t.for_link(Link::up(NodeId(1))).count(), 2);
        assert_eq!(t.for_link(Link::down(NodeId(1))).count(), 0);
    }

    #[test]
    fn clear_keeps_total() {
        let mut t = TraceBuffer::new(4);
        t.record(ok(0, 1));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.total_recorded(), 1);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::TxLoss {
            at: Asn(9),
            link: Link::down(NodeId(3)),
            cell: Cell::new(2, 1),
        };
        assert_eq!(e.to_string(), "ASN 9 N3:down TX loss (s2, ch1)");
    }
}
