//! Slot-by-slot discrete-event simulation of a multi-channel TSCH network.
//!
//! The [`Simulator`] executes the network schedule one slot at a time:
//!
//! 1. at every slotframe boundary, tasks release packets according to their
//!    rates;
//! 2. in every slot, each scheduled cell whose link has queued traffic
//!    attempts a transmission;
//! 3. same-cell transmissions are checked pairwise against the interference
//!    model — conflicting transmissions all fail and are retried at the
//!    link's next cell;
//! 4. surviving transmissions succeed with the link's packet delivery ratio;
//! 5. delivered packets are recorded with end-to-end latency, forwarded
//!    packets join the next hop's queue.
//!
//! The schedule and task rates can be mutated between slots, which is how
//! the dynamic-adjustment experiments (Fig. 10, Table II) inject traffic
//! changes while the network is running.
//!
//! # Dense fast path
//!
//! The hot loop never touches a map. At build time every directed link is
//! interned into a dense index (`child * 2 + direction`), and the engine
//! keeps:
//!
//! * per-link queues in a `Vec<VecDeque<_>>` indexed by link id;
//! * per-link PDR values in a flat `Vec<f64>`;
//! * the pairwise interference relation in a sparse CSR adjacency (built
//!   from [`InterferenceModel::conflict_candidates`] when the model has
//!   bounded range), so the trait object is consulted once per candidate
//!   pair at build instead of once per pair per slot, and storage stays
//!   O(Σ degree) instead of `(2n)²`;
//! * a per-slot table of non-empty cells (channel plus interned link list),
//!   replacing a `BTreeMap<Cell, Vec<Link>>` probe per (slot, channel).
//!
//! The slot table is derived from the [`NetworkSchedule`] and rebuilt lazily
//! whenever the schedule's version counter changes (see
//! [`NetworkSchedule::version`]), so runtime reconfiguration through
//! [`Simulator::schedule_mut`] keeps working. Scratch buffers for the
//! per-cell active/collided sets are reused across slots, so steady-state
//! execution performs no allocation.
//!
//! # Event-driven wake index
//!
//! The dense fast path alone still walks every slot's cell list and, at
//! slotframe boundaries, every per-link queue — at 100k+ nodes the
//! slotframe is overwhelmingly idle per (link, slot) and those walks
//! dominate. The engine therefore keeps an *event calendar* derived from
//! the same slot table:
//!
//! * `link_slot_offsets`/`link_slots` — a CSR bucket array mapping each
//!   link to the slot offsets where it holds a scheduled cell (one entry
//!   per assignment, rebuilt with the slot table);
//! * `slot_busy` — per slot, the number of scheduled assignments whose
//!   link currently has queued traffic. A queue's empty ↔ non-empty
//!   transitions adjust the counters through the link's CSR row, so a slot
//!   executes only when `slot_busy` is non-zero — otherwise every
//!   scheduled link would be skipped by the in-cell queue check anyway,
//!   consuming no RNG and recording nothing, and the slot can be skipped
//!   wholesale without observable difference;
//! * `occupied_links`/`occupied_pos` — a swap-remove index of links with
//!   non-empty queues, so boundary queue-depth sampling visits O(occupied)
//!   queues instead of all `2n` (the high-water merge is order-blind).
//!
//! The invariant that a skipped slot truly had no work is self-checked: a
//! slot whose `slot_busy` count promised work but whose cells all turned
//! out idle increments the `sim.idle_wakeups` counter (and trips a debug
//! assertion); the equivalence suite pins that counter to zero. Builders
//! can opt back into the unconditional walk with
//! [`SimulatorBuilder::dense_walk`], which is kept as the in-tree
//! differential baseline.

use crate::calendar::EventCalendar;
use crate::faults::{FaultAction, FaultPlan};
use crate::interference::InterferenceModel;
use crate::packet::{Packet, Rate, Task, TaskId};
use crate::radio::{LinkQuality, PdrError};
use crate::rng::SplitMix64;
use crate::schedule::NetworkSchedule;
use crate::stats::{SimStats, StatsMode};
use crate::time::{Asn, Cell, SlotframeConfig};
use crate::topology::{Direction, Link, NodeId, Tree};
use crate::trace::{TraceBuffer, TraceEvent};
use core::fmt;
use harp_obs::{CounterId, GaugeId, HistogramId, MetricsSnapshot, Obs, NO_NODE};
use std::collections::VecDeque;
use std::sync::Arc;

/// Pre-registered metric handles for the engine's hot paths. Registration
/// happens once at build time so the slot loop never searches by name.
#[derive(Debug, Clone, Copy)]
struct SimObsIds {
    slots: CounterId,
    tx_attempts: CounterId,
    collisions: CounterId,
    losses: CounterId,
    queue_drops: CounterId,
    deliveries: CounterId,
    generated: CounterId,
    /// Slots the wake index executed without finding an active link —
    /// must stay 0 (see the module docs).
    idle_wakeups: CounterId,
    latency: HistogramId,
    queue_high_water: GaugeId,
}

impl SimObsIds {
    fn register(obs: &mut Obs) -> Self {
        Self {
            slots: obs.metrics.counter("sim.slots"),
            tx_attempts: obs.metrics.counter("sim.tx_attempts"),
            collisions: obs.metrics.counter("sim.collisions"),
            losses: obs.metrics.counter("sim.losses"),
            queue_drops: obs.metrics.counter("sim.queue_drops"),
            deliveries: obs.metrics.counter("sim.deliveries"),
            generated: obs.metrics.counter("sim.generated"),
            idle_wakeups: obs.metrics.counter("sim.idle_wakeups"),
            latency: obs
                .metrics
                .histogram("sim.latency_slots", harp_obs::LATENCY_SLOT_BOUNDS),
            queue_high_water: obs.metrics.gauge("sim.queue_high_water"),
        }
    }
}

/// Default bound on packets queued per directed link.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Default number of transmission attempts per hop before a packet is
/// dropped.
pub const DEFAULT_MAX_RETRIES: u32 = 16;

/// Errors raised when configuring or driving the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A task references a node outside the tree.
    UnknownTaskSource(NodeId),
    /// A task id was registered twice.
    DuplicateTask(TaskId),
    /// Referenced a task that does not exist.
    UnknownTask(TaskId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTaskSource(n) => write!(f, "task source {n} not in the tree"),
            SimError::DuplicateTask(t) => write!(f, "task {t} registered twice"),
            SimError::UnknownTask(t) => write!(f, "unknown task {t}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone)]
struct TaskState {
    task: Task,
    route: Arc<[NodeId]>,
    /// Lane of each route hop's link, precomputed at build so the enqueue
    /// hot path never walks the tree or the id→lane table.
    route_lanes: Arc<[u32]>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct QueuedPacket {
    packet: Packet,
    /// The packet's task-wide lane route (`route_lanes[hop]` is the lane
    /// the packet queues on next), shared via `Arc` like the route itself.
    route_lanes: Arc<[u32]>,
    retries: u32,
}

/// One slotframe-boundary release: route, lane route, task, first
/// sequence number, and packet count.
type TaskRelease = (Arc<[NodeId]>, Arc<[u32]>, TaskId, u64, u32);

/// Configures and builds a [`Simulator`].
///
/// # Examples
///
/// ```
/// use tsch_sim::{
///     Rate, SimulatorBuilder, SlotframeConfig, Task, TaskId, Tree,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tree = Tree::paper_fig1_example();
/// let sim = SimulatorBuilder::new(tree, SlotframeConfig::paper_default())
///     .seed(7)
///     .task(Task::echo(TaskId(0), tsch_sim::NodeId(4), Rate::per_slotframe(1)))?
///     .build();
/// assert_eq!(sim.now().0, 0);
/// # Ok(())
/// # }
/// ```
pub struct SimulatorBuilder {
    tree: Tree,
    config: SlotframeConfig,
    schedule: Option<NetworkSchedule>,
    interference: Box<dyn InterferenceModel + Send + Sync>,
    quality: LinkQuality,
    tasks: Vec<TaskState>,
    seed: u64,
    queue_capacity: usize,
    max_retries: u32,
    trace_capacity: usize,
    obs_span_capacity: Option<usize>,
    stats_mode: StatsMode,
    dense_walk: bool,
    fault_plan: FaultPlan,
}

impl fmt::Debug for SimulatorBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimulatorBuilder")
            .field("nodes", &self.tree.len())
            .field("config", &self.config)
            .field("tasks", &self.tasks.len())
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl SimulatorBuilder {
    /// Starts a builder with perfect links and two-hop interference.
    #[must_use]
    pub fn new(tree: Tree, config: SlotframeConfig) -> Self {
        let interference = Box::new(crate::interference::TwoHopInterference::from_tree(&tree));
        Self {
            tree,
            config,
            schedule: None,
            interference,
            quality: LinkQuality::perfect(),
            tasks: Vec::new(),
            seed: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            max_retries: DEFAULT_MAX_RETRIES,
            trace_capacity: 0,
            obs_span_capacity: None,
            stats_mode: StatsMode::Full,
            dense_walk: false,
            fault_plan: FaultPlan::new(),
        }
    }

    /// Disables the event-driven slot skip, walking every slot's cell list
    /// unconditionally like the pre-calendar engine. Off by default — the
    /// two modes are observationally identical (pinned by the
    /// `event_engine_reconcile` suite); this toggle exists as the in-tree
    /// differential baseline for that suite.
    #[must_use]
    pub fn dense_walk(mut self, dense: bool) -> Self {
        self.dense_walk = dense;
        self
    }

    /// Selects how stats are retained; [`StatsMode::Streaming`] keeps
    /// memory O(nodes) on runs whose delivery count would otherwise
    /// dominate (see the [`SimStats`] docs).
    #[must_use]
    pub fn stats_mode(mut self, mode: StatsMode) -> Self {
        self.stats_mode = mode;
        self
    }

    /// Installs the initial network schedule.
    #[must_use]
    pub fn schedule(mut self, schedule: NetworkSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Replaces the interference model.
    #[must_use]
    pub fn interference(mut self, model: Box<dyn InterferenceModel + Send + Sync>) -> Self {
        self.interference = model;
        self
    }

    /// Sets the link-quality (PDR) model.
    #[must_use]
    pub fn quality(mut self, quality: LinkQuality) -> Self {
        self.quality = quality;
        self
    }

    /// Seeds the simulator's random processes.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Bounds the per-link packet queue (packets beyond it are dropped).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Bounds per-hop retransmissions before a packet is dropped.
    #[must_use]
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Enables event tracing, retaining the most recent `capacity` events
    /// (0, the default, disables tracing).
    #[must_use]
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enables the observability layer, retaining the most recent
    /// `span_capacity` slotframe-time spans. Off by default; a disabled
    /// simulator records nothing and snapshots empty, and its random
    /// processes are untouched, so runs are byte-identical either way.
    #[must_use]
    pub fn observability(mut self, span_capacity: usize) -> Self {
        self.obs_span_capacity = Some(span_capacity);
        self
    }

    /// Installs a fault-injection plan; its actions fire at their exact
    /// ASNs as the simulation advances (see [`FaultPlan`]).
    ///
    /// The plan is validated when [`build`](Self::build) runs: every
    /// referenced node and link must lie inside the tree's id space, PDR
    /// values must be within `[0, 1]`, and every referenced task must be
    /// registered — `build` panics otherwise.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Registers a task.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownTaskSource`] if the source node is not in the tree;
    /// [`SimError::DuplicateTask`] on a repeated task id.
    pub fn task(mut self, task: Task) -> Result<Self, SimError> {
        if task.source.index() >= self.tree.len() {
            return Err(SimError::UnknownTaskSource(task.source));
        }
        if self.tasks.iter().any(|t| t.task.id == task.id) {
            return Err(SimError::DuplicateTask(task.id));
        }
        let route: Arc<[NodeId]> = task.route(&self.tree).into();
        self.tasks.push(TaskState {
            task,
            route,
            route_lanes: Arc::from([]),
            next_seq: 0,
        });
        Ok(self)
    }

    /// Builds the simulator at ASN 0.
    #[must_use]
    pub fn build(self) -> Simulator {
        let schedule = self
            .schedule
            .unwrap_or_else(|| NetworkSchedule::new(self.config));
        let link_count = self.tree.len() * 2;

        // Intern every directed tree link; the dense id is
        // `child * 2 + direction`, so `links[id]` inverts the mapping.
        let links: Vec<Link> = (0..self.tree.len() as u32)
            .flat_map(|c| [Link::up(NodeId(c)), Link::down(NodeId(c))])
            .collect();

        // Per-link PDR, frozen at build time (the quality model has no
        // runtime mutation API).
        let pdr: Vec<f64> = links.iter().map(|&l| self.quality.pdr(l)).collect();

        // Pairwise interference in sparse CSR form, consulted once per
        // ordered pair here rather than once per pair per occupied cell.
        // Links whose child is the root have no tree edge and can never
        // carry traffic; their rows stay empty. Models exposing conflict
        // candidates (bounded-range interference such as
        // [`crate::TwoHopInterference`]) make the build near-linear —
        // O(Σ degree) storage instead of the old dense `(2n)²` matrix,
        // which is ~37 GiB at 100k nodes.
        let valid: Vec<bool> = (0..link_count)
            .map(|id| self.tree.parent(links[id].child).is_some())
            .collect();
        let intern = |link: Link| -> Option<usize> {
            if link.child.index() >= self.tree.len() {
                return None;
            }
            let bit = match link.direction {
                Direction::Up => 0,
                Direction::Down => 1,
            };
            Some(link.child.index() * 2 + bit)
        };
        let mut conflict_offsets: Vec<u32> = Vec::with_capacity(link_count + 1);
        let mut conflict_neighbors: Vec<u32> = Vec::new();
        let mut row: Vec<u32> = Vec::new();
        conflict_offsets.push(0);
        for a in 0..link_count {
            row.clear();
            if valid[a] {
                match self.interference.conflict_candidates(&self.tree, links[a]) {
                    Some(candidates) => {
                        for candidate in candidates {
                            if let Some(b) = intern(candidate) {
                                if b != a
                                    && valid[b]
                                    && self.interference.conflicts(&self.tree, links[a], links[b])
                                {
                                    row.push(b as u32);
                                }
                            }
                        }
                    }
                    None => {
                        for b in 0..link_count {
                            if b != a
                                && valid[b]
                                && self.interference.conflicts(&self.tree, links[a], links[b])
                            {
                                row.push(b as u32);
                            }
                        }
                    }
                }
                row.sort_unstable();
                row.dedup();
            }
            conflict_neighbors.extend_from_slice(&row);
            conflict_offsets.push(
                u32::try_from(conflict_neighbors.len()).expect("conflict adjacency fits u32"),
            );
        }

        let mut obs = match self.obs_span_capacity {
            Some(capacity) => Obs::enabled(capacity),
            None => Obs::disabled(),
        };
        let obs_ids = SimObsIds::register(&mut obs);

        // Validate the fault plan against the tree and task set, then load
        // it onto the event calendar. Same-ASN actions keep plan order
        // (the calendar is FIFO within a slot).
        let mut fault_calendar = EventCalendar::new();
        for &(at, action) in self.fault_plan.events() {
            match action {
                FaultAction::NodeDown(n) | FaultAction::NodeUp(n) => {
                    assert!(
                        n.index() < self.tree.len(),
                        "fault plan names node {n} outside the tree"
                    );
                }
                FaultAction::LinkMask(l, _) => {
                    assert!(
                        l.child.index() < self.tree.len(),
                        "fault plan names link {l:?} outside the tree"
                    );
                }
                FaultAction::LinkPdr(l, p) => {
                    assert!(
                        l.child.index() < self.tree.len(),
                        "fault plan names link {l:?} outside the tree"
                    );
                    assert!(
                        (0.0..=1.0).contains(&p),
                        "fault plan PDR {p} outside [0, 1]"
                    );
                }
                FaultAction::TaskBurst(t, _) | FaultAction::TaskRate(t, _) => {
                    assert!(
                        self.tasks.iter().any(|s| s.task.id == t),
                        "fault plan names unregistered task {t}"
                    );
                }
            }
            fault_calendar.schedule(at, action);
        }

        let node_count = self.tree.len();
        let mut sim = Simulator {
            tree: self.tree,
            config: self.config,
            schedule,
            tasks: self.tasks,
            queues: Vec::new(),
            lane_of: vec![u32::MAX; link_count],
            lane_links: Vec::new(),
            lane_link_id: Vec::new(),
            lane_pdr: Vec::new(),
            links,
            pdr,
            conflict_offsets,
            conflict_neighbors,
            slot_table: vec![Vec::new(); self.config.slots as usize],
            table_version: u64::MAX,
            link_slot_offsets: vec![0; link_count + 1],
            link_slots: Vec::new(),
            slot_busy: vec![0; self.config.slots as usize],
            occupied_links: Vec::new(),
            occupied_pos: Vec::new(),
            dense_walk: self.dense_walk,
            active_scratch: Vec::new(),
            collided_scratch: Vec::new(),
            depth_scratch: Vec::new(),
            touched_scratch: Vec::new(),
            active_stamp: vec![0; link_count],
            stamp: 0,
            now: Asn::ZERO,
            rng: SplitMix64::new(self.seed),
            stats: match self.stats_mode {
                StatsMode::Full => SimStats::new(),
                StatsMode::Streaming => SimStats::streaming(),
            },
            queue_capacity: self.queue_capacity,
            max_retries: self.max_retries,
            trace: TraceBuffer::new(self.trace_capacity),
            obs,
            obs_ids,
            frame_start_asn: 0,
            frame_tx_base: 0,
            fault_calendar,
            node_down: vec![false; node_count],
            link_masked: vec![false; link_count],
            faults_fired: 0,
            idle_wakeup_count: 0,
        };
        sim.rebuild_slot_table();
        // Scheduled links took the low (cache-densest) lanes above; now
        // resolve each task route into its per-hop lane sequence so the
        // enqueue path is a single indexed read.
        for i in 0..sim.tasks.len() {
            let route = sim.tasks[i].route.clone();
            let lanes: Vec<u32> = route
                .windows(2)
                .map(|hop| {
                    let id = sim.route_link_id(hop[0], hop[1]);
                    sim.lane_for(id) as u32
                })
                .collect();
            sim.tasks[i].route_lanes = lanes.into();
        }
        sim
    }
}

/// The running network simulation.
pub struct Simulator {
    tree: Tree,
    config: SlotframeConfig,
    schedule: NetworkSchedule,
    tasks: Vec<TaskState>,
    /// Per-lane queues. All mutable per-link hot state is indexed by the
    /// compact *lane* id — allocated on first schedule appearance or first
    /// queued packet — so the cache/TLB working set scales with the number
    /// of links that ever carry traffic, not with the tree size.
    queues: Vec<VecDeque<QueuedPacket>>,
    /// Dense link id (`child * 2 + direction`) → lane, `u32::MAX` while
    /// the link has no lane yet.
    lane_of: Vec<u32>,
    /// Lane → [`Link`], for stats, trace and sampler reporting.
    lane_links: Vec<Link>,
    /// Lane → dense link id (conflict rows and stamps stay id-indexed).
    lane_link_id: Vec<u32>,
    /// Lane → PDR (copied from [`Self::pdr`]; quality is frozen at build).
    lane_pdr: Vec<f64>,
    /// Dense link id → [`Link`], consulted at build and lane creation.
    links: Vec<Link>,
    /// Per-link PDR, indexed by dense link id.
    pdr: Vec<f64>,
    /// CSR offsets into [`Self::conflict_neighbors`]; row `id` spans
    /// `conflict_offsets[id]..conflict_offsets[id + 1]`.
    conflict_offsets: Vec<u32>,
    /// Concatenated, per-row-sorted conflicting link ids.
    conflict_neighbors: Vec<u32>,
    /// `slot_table[slot]` lists the slot's non-empty cells in channel order,
    /// each with its assigned links (lanes, assignment order).
    slot_table: Vec<Vec<(u16, Vec<u32>)>>,
    /// Schedule version the slot table was built from.
    table_version: u64,
    /// CSR offsets into [`Self::link_slots`]; lane `l`'s scheduled slot
    /// offsets span `link_slot_offsets[l]..link_slot_offsets[l + 1]`.
    /// Lanes allocated since the last rebuild are past the end and
    /// (being unscheduled) have an empty range — see
    /// [`Self::lane_slot_range`].
    link_slot_offsets: Vec<u32>,
    /// Concatenated per-lane scheduled slot offsets, one entry per (cell,
    /// assignment) occurrence — the event calendar's bucket array.
    link_slots: Vec<u32>,
    /// Per slot: scheduled assignments whose link queue is non-empty. A
    /// slot with count 0 is skipped (no RNG, stats or trace possible).
    slot_busy: Vec<u32>,
    /// Lanes with non-empty queues, unordered (swap-remove membership).
    occupied_links: Vec<u32>,
    /// Lane → its index in [`Self::occupied_links`], `u32::MAX` when
    /// the queue is empty.
    occupied_pos: Vec<u32>,
    /// Walk every slot unconditionally (the pre-calendar behaviour), kept
    /// as the differential baseline for the equivalence suite.
    dense_walk: bool,
    active_scratch: Vec<u32>,
    collided_scratch: Vec<bool>,
    depth_scratch: Vec<usize>,
    /// Sender nodes touched by the current queue-depth sample.
    touched_scratch: Vec<u32>,
    /// Per-link stamp marking membership in the current cell's active set;
    /// a link is active iff `active_stamp[id] == stamp`.
    active_stamp: Vec<u32>,
    /// Stamp for the cell currently executing (0 = never stamped).
    stamp: u32,
    now: Asn,
    rng: SplitMix64,
    stats: SimStats,
    queue_capacity: usize,
    max_retries: u32,
    trace: TraceBuffer,
    obs: Obs,
    obs_ids: SimObsIds,
    /// First ASN of the slotframe in progress (observability only).
    frame_start_asn: u64,
    /// `stats.tx_attempts` at the start of the slotframe in progress.
    frame_tx_base: u64,
    /// Pending fault actions, drained at the top of every slot
    /// ([`FaultPlan`]). Empty unless a plan was installed.
    fault_calendar: EventCalendar<FaultAction>,
    /// Per node: currently crashed. Adjacent links read as PDR 0.
    node_down: Vec<bool>,
    /// Per dense link id: effective PDR forced to 0 (partition windows).
    link_masked: Vec<bool>,
    /// Fault actions applied so far.
    faults_fired: u64,
    /// Always-on mirror of the `sim.idle_wakeups` obs counter, so the
    /// invariant is checkable without enabling observability.
    idle_wakeup_count: u64,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.tree.len())
            .field("tasks", &self.tasks.len())
            .field("queued", &self.queued_packets())
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// The current absolute slot number.
    #[must_use]
    pub fn now(&self) -> Asn {
        self.now
    }

    /// The network tree.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The slotframe configuration.
    #[must_use]
    pub fn config(&self) -> SlotframeConfig {
        self.config
    }

    /// Read access to the schedule.
    #[must_use]
    pub fn schedule(&self) -> &NetworkSchedule {
        &self.schedule
    }

    /// Mutable access to the schedule (for runtime reconfiguration).
    ///
    /// The engine's dense slot table is re-derived automatically before the
    /// next slot executes, keyed off [`NetworkSchedule::version`].
    #[must_use]
    pub fn schedule_mut(&mut self) -> &mut NetworkSchedule {
        &mut self.schedule
    }

    /// Collected measurements so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Consumes the simulator, returning its measurements.
    #[must_use]
    pub fn into_stats(self) -> SimStats {
        self.stats
    }

    /// The event trace (empty unless enabled via
    /// [`SimulatorBuilder::trace_capacity`]).
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// The observability handle (disabled unless enabled via
    /// [`SimulatorBuilder::observability`]).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the observability handle (e.g. to clear spans
    /// between measurement windows).
    #[must_use]
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Snapshots the engine's metrics (empty while observability is off).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.metrics.snapshot()
    }

    /// Total packets currently queued anywhere in the network.
    #[must_use]
    pub fn queued_packets(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Bytes held by the sparse conflict adjacency (CSR offsets plus
    /// neighbor ids) — the scale experiments' peak-RSS proxy. The old
    /// dense matrix cost `(2n)²` bytes; this is O(Σ conflict degree).
    #[must_use]
    pub fn conflict_storage_bytes(&self) -> usize {
        std::mem::size_of_val(self.conflict_offsets.as_slice())
            + std::mem::size_of_val(self.conflict_neighbors.as_slice())
    }

    /// Directed conflict pairs stored in the sparse adjacency.
    #[must_use]
    pub fn conflict_entries(&self) -> usize {
        self.conflict_neighbors.len()
    }

    /// Packets queued at one node (over all its outgoing links).
    #[must_use]
    pub fn queue_depth(&self, node: NodeId) -> usize {
        // The node transmits on its own uplink and on each child's downlink.
        let mut total = match self.tree.parent(node) {
            Some(_) => self.id_queue_len(node.index() * 2),
            None => 0,
        };
        for &child in self.tree.children(node) {
            total += self.id_queue_len(child.index() * 2 + 1);
        }
        total
    }

    /// Queue length of the dense link id, 0 while the link has no lane.
    fn id_queue_len(&self, id: usize) -> usize {
        match self.lane_of[id] {
            u32::MAX => 0,
            lane => self.queues[lane as usize].len(),
        }
    }

    /// Changes a task's rate, effective from the next slotframe boundary.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownTask`] for an unregistered id.
    pub fn set_task_rate(&mut self, id: TaskId, rate: Rate) -> Result<(), SimError> {
        let state = self
            .tasks
            .iter_mut()
            .find(|t| t.task.id == id)
            .ok_or(SimError::UnknownTask(id))?;
        state.task.rate = rate;
        Ok(())
    }

    /// The registered tasks.
    #[must_use]
    pub fn tasks(&self) -> Vec<Task> {
        self.tasks.iter().map(|t| t.task.clone()).collect()
    }

    /// Advances the simulation by `n` slots, accumulating wall-clock time
    /// into [`SimStats::run_time`].
    pub fn run_slots(&mut self, n: u64) {
        let start = std::time::Instant::now();
        for _ in 0..n {
            self.step_slot();
        }
        self.stats.run_time += start.elapsed();
    }

    /// Advances the simulation by `n` whole slotframes.
    pub fn run_slotframes(&mut self, n: u64) {
        self.run_slots(n * u64::from(self.config.slots));
    }

    /// Executes exactly one slot.
    pub fn step_slot(&mut self) {
        // Re-derive the slot table and wake index *before* any queue
        // transition this slot: boundary releases must raise queue
        // pressure through the fresh schedule, not a stale one. The
        // rebuild is a pure derivation, so hoisting it ahead of the
        // boundary work cannot change observable behaviour.
        if self.table_version != self.schedule.version() {
            self.rebuild_slot_table();
        }
        // Drain fault actions due this slot *before* boundary work, so a
        // crash or rate change landing on a frame boundary governs that
        // frame's releases. One heap peek per slot when a plan is armed,
        // one branch when none is.
        if !self.fault_calendar.is_empty() {
            while let Some((_, action)) = self.fault_calendar.pop_due(self.now) {
                self.faults_fired += 1;
                // Tag each firing as an instantaneous span on a "fault"
                // lane so traces and flight recorders can show what the
                // plan did and when, not just that something fired.
                if self.obs.is_enabled() {
                    let node = action.node().map_or(NO_NODE, |n| n.0);
                    self.obs.span(
                        action.kind(),
                        "fault",
                        node,
                        0,
                        self.now.0,
                        self.now.0,
                        self.faults_fired as i64,
                    );
                }
                self.apply_fault(action);
            }
        }
        if self.config.slot_offset(self.now) == 0 {
            if self.obs.is_enabled() {
                if self.now.0 > 0 {
                    let tx_in_frame = self.stats.tx_attempts - self.frame_tx_base;
                    self.obs.span(
                        "slotframe",
                        "sim",
                        NO_NODE,
                        0,
                        self.frame_start_asn,
                        self.now.0 - 1,
                        tx_in_frame as i64,
                    );
                }
                self.frame_start_asn = self.now.0;
                self.frame_tx_base = self.stats.tx_attempts;
            }
            self.release_tasks();
            self.sample_queue_depths();
        }
        let slot = self.config.slot_offset(self.now) as usize;
        // Event-driven skip: a slot none of whose scheduled links has
        // queued traffic would reject every cell at the in-cell queue
        // check — no transmission, no RNG draw, no stats or trace — so it
        // can be skipped without touching its cell list at all.
        if self.dense_walk || self.slot_busy[slot] > 0 {
            // Move the slot's cell list out so the engine can be borrowed
            // mutably while iterating it; nothing below touches the table.
            let cells = std::mem::take(&mut self.slot_table[slot]);
            let mut any_active = false;
            for (channel, ids) in &cells {
                any_active |= self.execute_cell(Cell::new(slot as u32, *channel), ids);
            }
            self.slot_table[slot] = cells;
            if !self.dense_walk && !any_active {
                // The queue-pressure index promised work but every cell
                // was idle — unreachable by construction; the reconcile
                // suite and the bench gate pin this counter to zero.
                self.idle_wakeup_count += 1;
                self.obs.metrics.inc(self.obs_ids.idle_wakeups, 1);
                debug_assert!(false, "event calendar woke idle slot {slot}");
            }
        }
        self.stats.slots_simulated += 1;
        self.obs.metrics.inc(self.obs_ids.slots, 1);
        self.now = self.now.plus(1);
    }

    /// The dense id of `link`, or `None` for links outside the tree's id
    /// space (they can never carry traffic).
    fn intern(&self, link: Link) -> Option<u32> {
        if link.child.index() >= self.tree.len() {
            return None;
        }
        let bit = match link.direction {
            Direction::Up => 0,
            Direction::Down => 1,
        };
        Some((link.child.index() * 2 + bit) as u32)
    }

    /// Re-derives the per-slot schedule table from the live schedule.
    fn rebuild_slot_table(&mut self) {
        for slot in &mut self.slot_table {
            slot.clear();
        }
        for (cell, links) in self.schedule.iter_cells() {
            // Mirror the map-based engine: only cells inside the simulator's
            // own slotframe bounds ever execute.
            if cell.slot >= self.config.slots || cell.channel >= self.config.channels {
                continue;
            }
            let ids: Vec<u32> = links.iter().filter_map(|&l| self.intern(l)).collect();
            if !ids.is_empty() {
                // `iter_cells` is cell-ordered, so channels arrive ascending
                // within each slot.
                self.slot_table[cell.slot as usize].push((cell.channel, ids));
            }
        }
        // Second pass: dense ids → lanes (a `&mut self` call, so it cannot
        // run while `iter_cells` borrows the schedule). Every scheduled
        // link gets its lane here, in (slot, channel, assignment) order.
        let mut table = std::mem::take(&mut self.slot_table);
        for cells in &mut table {
            for (_, ids) in cells.iter_mut() {
                for id in ids.iter_mut() {
                    *id = self.lane_for(*id as usize) as u32;
                }
            }
        }
        self.slot_table = table;
        self.table_version = self.schedule.version();
        self.rebuild_wake_index();
    }

    /// The lane of dense link `id`, allocated on first use. A lane pins
    /// the link's queue, occupancy slot and wake rows into contiguous
    /// arrays, so per-slot work touches memory proportional to the active
    /// link population — the mechanism behind the flat per-active-cell
    /// cost from 1k to 1M nodes.
    fn lane_for(&mut self, id: usize) -> usize {
        let lane = self.lane_of[id];
        if lane != u32::MAX {
            return lane as usize;
        }
        let lane = self.lane_links.len();
        self.lane_of[id] = u32::try_from(lane).expect("lane count fits u32");
        self.lane_links.push(self.links[id]);
        self.lane_link_id.push(id as u32);
        self.lane_pdr.push(self.effective_pdr(id));
        self.queues.push(VecDeque::new());
        self.occupied_pos.push(u32::MAX);
        lane
    }

    /// Scheduled slot range of `lane` in the wake CSR. Lanes allocated
    /// after the last rebuild are necessarily unscheduled: empty range.
    fn lane_slot_range(&self, lane: usize) -> (usize, usize) {
        if lane + 1 < self.link_slot_offsets.len() {
            (
                self.link_slot_offsets[lane] as usize,
                self.link_slot_offsets[lane + 1] as usize,
            )
        } else {
            (0, 0)
        }
    }

    /// Re-derives the link→slots CSR and per-slot queue-pressure counts
    /// from the freshly rebuilt slot table.
    ///
    /// One CSR entry exists per (slot, cell, link) assignment — duplicates
    /// are kept deliberately so that `slot_busy` increments and decrements
    /// stay balanced when a link appears several times in one slotframe.
    fn rebuild_wake_index(&mut self) {
        let lane_count = self.lane_links.len();
        self.link_slot_offsets.clear();
        self.link_slot_offsets.resize(lane_count + 1, 0);
        for cells in &self.slot_table {
            for (_, lanes) in cells {
                for &lane in lanes {
                    self.link_slot_offsets[lane as usize + 1] += 1;
                }
            }
        }
        for i in 0..lane_count {
            self.link_slot_offsets[i + 1] += self.link_slot_offsets[i];
        }
        let total = self.link_slot_offsets[lane_count] as usize;
        self.link_slots.clear();
        self.link_slots.resize(total, 0);
        let mut cursor: Vec<u32> = self.link_slot_offsets[..lane_count].to_vec();
        for (slot, cells) in self.slot_table.iter().enumerate() {
            for (_, lanes) in cells {
                for &lane in lanes {
                    let c = &mut cursor[lane as usize];
                    self.link_slots[*c as usize] = slot as u32;
                    *c += 1;
                }
            }
        }
        // Re-derive slot pressure from the lanes that currently hold
        // traffic; the occupied set itself is schedule-independent.
        self.slot_busy.clear();
        self.slot_busy.resize(self.slot_table.len(), 0);
        for i in 0..self.occupied_links.len() {
            let lane = self.occupied_links[i] as usize;
            let (lo, hi) = self.lane_slot_range(lane);
            for k in lo..hi {
                self.slot_busy[self.link_slots[k] as usize] += 1;
            }
        }
    }

    /// Records that `lane`'s queue just went from empty to non-empty:
    /// raises queue pressure on every slot the link is scheduled in.
    fn note_queue_nonempty(&mut self, lane: usize) {
        debug_assert_eq!(self.occupied_pos[lane], u32::MAX);
        self.occupied_pos[lane] = self.occupied_links.len() as u32;
        self.occupied_links.push(lane as u32);
        let (lo, hi) = self.lane_slot_range(lane);
        for k in lo..hi {
            self.slot_busy[self.link_slots[k] as usize] += 1;
        }
    }

    /// Records that `lane`'s queue just drained to empty: drops its
    /// queue pressure and swap-removes it from the occupied set.
    fn note_queue_empty(&mut self, lane: usize) {
        let pos = self.occupied_pos[lane];
        debug_assert_ne!(pos, u32::MAX);
        let last = self
            .occupied_links
            .pop()
            .expect("occupied set contains the draining lane");
        if last != lane as u32 {
            self.occupied_links[pos as usize] = last;
            self.occupied_pos[last as usize] = pos;
        }
        self.occupied_pos[lane] = u32::MAX;
        let (lo, hi) = self.lane_slot_range(lane);
        for k in lo..hi {
            let busy = &mut self.slot_busy[self.link_slots[k] as usize];
            debug_assert!(*busy > 0);
            *busy -= 1;
        }
    }

    /// Releases task packets at a slotframe boundary.
    fn release_tasks(&mut self) {
        let frame = self.config.slotframe_index(self.now);
        // Collect first: route clones are cheap (Arc), and we must not hold
        // a borrow of `self.tasks` while enqueueing.
        let mut releases: Vec<TaskRelease> = Vec::new();
        for state in &mut self.tasks {
            // A crashed node generates nothing while down (the sensor is
            // off, not buffering); its sequence numbers do not advance.
            if self.node_down[state.task.source.index()] {
                continue;
            }
            let n = state.task.rate.packets_in_slotframe(frame);
            if n > 0 {
                releases.push((
                    state.route.clone(),
                    state.route_lanes.clone(),
                    state.task.id,
                    state.next_seq,
                    n,
                ));
                state.next_seq += u64::from(n);
            }
        }
        for (route, route_lanes, task, seq0, n) in releases {
            for k in 0..u64::from(n) {
                self.stats.generated += 1;
                self.obs.metrics.inc(self.obs_ids.generated, 1);
                let packet = Packet::new(task, seq0 + k, self.now, route.clone());
                if packet.is_delivered() {
                    // Gateway-sourced degenerate route: delivered instantly.
                    self.obs.metrics.inc(self.obs_ids.deliveries, 1);
                    self.obs.metrics.observe(self.obs_ids.latency, 0);
                    self.stats
                        .record_delivery(packet.holder(), self.now, self.now);
                } else {
                    self.enqueue(packet, route_lanes.clone());
                }
            }
        }
    }

    /// Queues a packet at its current holder for its next hop.
    fn enqueue(&mut self, packet: Packet, route_lanes: Arc<[u32]>) {
        let lane = route_lanes[packet.hop] as usize;
        let queue = &mut self.queues[lane];
        if queue.len() >= self.queue_capacity {
            self.stats.queue_drops += 1;
            self.obs.metrics.inc(self.obs_ids.queue_drops, 1);
        } else {
            let was_empty = queue.is_empty();
            queue.push_back(QueuedPacket {
                packet,
                route_lanes,
                retries: 0,
            });
            if was_empty {
                self.note_queue_nonempty(lane);
            }
        }
    }

    /// The dense id of the link from `holder` to `next` (build-time route
    /// resolution; see [`TaskState::route_lanes`]).
    ///
    /// # Panics
    ///
    /// Panics if the hop is not a tree edge.
    fn route_link_id(&self, holder: NodeId, next: NodeId) -> usize {
        if self.tree.parent(holder) == Some(next) {
            holder.index() * 2 // Link::up(holder)
        } else if self.tree.parent(next) == Some(holder) {
            next.index() * 2 + 1 // Link::down(next)
        } else {
            panic!("route hop {holder}->{next} is not a tree edge");
        }
    }

    /// Executes all transmissions scheduled on one cell.
    ///
    /// Returns `true` if at least one link transmitted, so `step_slot` can
    /// verify that the queue-pressure index never wakes an idle slot.
    fn execute_cell(&mut self, cell: Cell, lanes: &[u32]) -> bool {
        // Links with traffic ready on this cell.
        self.active_scratch.clear();
        for &lane in lanes {
            if !self.queues[lane as usize].is_empty() {
                self.active_scratch.push(lane);
            }
        }
        let n = self.active_scratch.len();
        if n == 0 {
            return false;
        }
        self.stats.tx_attempts += n as u64;
        self.obs.metrics.inc(self.obs_ids.tx_attempts, n as u64);
        for &lane in &self.active_scratch {
            self.stats.record_tx_attempt(self.lane_links[lane as usize]);
        }

        // Interference among simultaneous transmissions, resolved against
        // the sparse conflict rows: stamp the active set, then walk each
        // active link's row until a co-active conflict is found. The rows
        // hold exactly the links the old pairwise matrix scan consulted,
        // and the relation is symmetric, so the marking is identical —
        // at O(Σ active-row degree) instead of O(k²) probes.
        self.collided_scratch.clear();
        self.collided_scratch.resize(n, false);
        if n > 1 {
            self.stamp = self.stamp.wrapping_add(1);
            if self.stamp == 0 {
                // Stamp wrapped: clear stale marks so no link looks active.
                self.active_stamp.iter_mut().for_each(|s| *s = 0);
                self.stamp = 1;
            }
            for &lane in &self.active_scratch {
                self.active_stamp[self.lane_link_id[lane as usize] as usize] = self.stamp;
            }
            for i in 0..n {
                let a = self.lane_link_id[self.active_scratch[i] as usize] as usize;
                let lo = self.conflict_offsets[a] as usize;
                let hi = self.conflict_offsets[a + 1] as usize;
                for &b in &self.conflict_neighbors[lo..hi] {
                    if self.active_stamp[b as usize] == self.stamp {
                        self.collided_scratch[i] = true;
                        break;
                    }
                }
            }
        }

        for idx in 0..n {
            let lane = self.active_scratch[idx] as usize;
            let link = self.lane_links[lane];
            if self.collided_scratch[idx] {
                self.stats.collisions += 1;
                self.obs.metrics.inc(self.obs_ids.collisions, 1);
                self.trace.record(TraceEvent::TxCollision {
                    at: self.now,
                    link,
                    cell,
                });
                self.fail_head(lane, link);
                continue;
            }
            let pdr = self.lane_pdr[lane];
            if pdr < 1.0 && !self.rng.chance(pdr) {
                self.stats.losses += 1;
                self.obs.metrics.inc(self.obs_ids.losses, 1);
                self.trace.record(TraceEvent::TxLoss {
                    at: self.now,
                    link,
                    cell,
                });
                self.fail_head(lane, link);
                continue;
            }
            self.trace.record(TraceEvent::TxOk {
                at: self.now,
                link,
                cell,
            });
            self.deliver_head(lane);
        }
        true
    }

    /// Handles a failed transmission: retry or drop the head packet.
    fn fail_head(&mut self, lane: usize, link: Link) {
        let queue = &mut self.queues[lane];
        let head = queue.front_mut().expect("active link queue is non-empty");
        head.retries += 1;
        if head.retries > self.max_retries {
            queue.pop_front();
            let emptied = queue.is_empty();
            self.stats.queue_drops += 1;
            self.obs.metrics.inc(self.obs_ids.queue_drops, 1);
            self.trace.record(TraceEvent::Drop { at: self.now, link });
            if emptied {
                self.note_queue_empty(lane);
            }
        }
    }

    /// Advances the head packet of lane `lane` by one hop.
    fn deliver_head(&mut self, lane: usize) {
        let mut queued = self.queues[lane]
            .pop_front()
            .expect("active link queue is non-empty");
        if self.queues[lane].is_empty() {
            self.note_queue_empty(lane);
        }
        queued.packet.advance();
        if queued.packet.is_delivered() {
            let source = queued.packet.route[0];
            let delivered_at = self.now.plus(1);
            self.obs.metrics.inc(self.obs_ids.deliveries, 1);
            self.obs.metrics.observe(
                self.obs_ids.latency,
                delivered_at.0 - queued.packet.created.0,
            );
            self.stats
                .record_delivery(source, queued.packet.created, delivered_at);
        } else {
            queued.retries = 0;
            self.enqueue(queued.packet, queued.route_lanes);
        }
    }

    /// Samples per-node queue depths into the stats high-water marks.
    ///
    /// The event-driven path walks only the occupied links — the nodes it
    /// reports and the depths it reports for them are exactly those the
    /// dense scan finds, because empty queues contribute nothing either
    /// way and `record_queue_depth`/`set_max` are order-insensitive
    /// max-merges.
    fn sample_queue_depths(&mut self) {
        if self.dense_walk {
            self.depth_scratch.clear();
            self.depth_scratch.resize(self.tree.len(), 0);
            for (lane, queue) in self.queues.iter().enumerate() {
                if queue.is_empty() {
                    continue;
                }
                let link = self.lane_links[lane];
                // The sender of an uplink is the child itself; of a downlink,
                // the child's parent. Links without a tree edge hold no
                // traffic.
                let sender = match link.direction {
                    Direction::Up => self.tree.parent(link.child).map(|_| link.child),
                    Direction::Down => self.tree.parent(link.child),
                };
                if let Some(sender) = sender {
                    self.depth_scratch[sender.index()] += queue.len();
                }
            }
            for (i, &depth) in self.depth_scratch.iter().enumerate() {
                if depth > 0 {
                    self.stats.record_queue_depth(NodeId(i as u32), depth);
                    self.obs
                        .metrics
                        .set_max(self.obs_ids.queue_high_water, depth as f64);
                }
            }
            return;
        }
        if self.depth_scratch.len() < self.tree.len() {
            self.depth_scratch.resize(self.tree.len(), 0);
        }
        self.touched_scratch.clear();
        for i in 0..self.occupied_links.len() {
            let lane = self.occupied_links[i] as usize;
            let link = self.lane_links[lane];
            let sender = match link.direction {
                Direction::Up => self.tree.parent(link.child).map(|_| link.child),
                Direction::Down => self.tree.parent(link.child),
            };
            let sender = sender.expect("occupied link lies on a tree edge");
            if self.depth_scratch[sender.index()] == 0 {
                self.touched_scratch.push(sender.index() as u32);
            }
            self.depth_scratch[sender.index()] += self.queues[lane].len();
        }
        self.touched_scratch.sort_unstable();
        for i in 0..self.touched_scratch.len() {
            let node = self.touched_scratch[i] as usize;
            let depth = self.depth_scratch[node];
            self.depth_scratch[node] = 0;
            self.stats.record_queue_depth(NodeId(node as u32), depth);
            self.obs
                .metrics
                .set_max(self.obs_ids.queue_high_water, depth as f64);
        }
    }

    // --- Fault injection -------------------------------------------------

    /// Applies one fault action now (see [`FaultPlan`] for semantics).
    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::NodeDown(node) => {
                if self.node_down[node.index()] {
                    return;
                }
                self.node_down[node.index()] = true;
                // A crash loses the node's RAM: drop everything it had
                // queued to send before its links go dark.
                self.clear_sender_queues(node);
                self.refresh_node_links(node);
            }
            FaultAction::NodeUp(node) => {
                if !self.node_down[node.index()] {
                    return;
                }
                self.node_down[node.index()] = false;
                self.refresh_node_links(node);
            }
            FaultAction::LinkMask(link, masked) => {
                if let Some(id) = self.intern(link) {
                    self.link_masked[id as usize] = masked;
                    self.refresh_link_quality(id as usize);
                }
            }
            FaultAction::LinkPdr(link, pdr) => {
                if let Some(id) = self.intern(link) {
                    self.pdr[id as usize] = pdr;
                    self.refresh_link_quality(id as usize);
                }
            }
            FaultAction::TaskBurst(task, n) => self.release_burst(task, n),
            FaultAction::TaskRate(task, rate) => {
                self.set_task_rate(task, rate)
                    .expect("fault plan tasks are validated at build");
            }
        }
    }

    /// The PDR link `id` currently transmits at: 0 while either endpoint
    /// is down or the link is masked, its configured value otherwise.
    fn effective_pdr(&self, id: usize) -> f64 {
        if self.link_masked[id] {
            return 0.0;
        }
        let link = self.links[id];
        if self.node_down[link.child.index()] {
            return 0.0;
        }
        if let Some(parent) = self.tree.parent(link.child) {
            if self.node_down[parent.index()] {
                return 0.0;
            }
        }
        self.pdr[id]
    }

    /// Re-derives the lane-cached PDR of link `id` after a fault mutation.
    /// Links without a lane need nothing: [`Self::lane_for`] reads the
    /// effective value at allocation.
    fn refresh_link_quality(&mut self, id: usize) {
        let lane = self.lane_of[id];
        if lane != u32::MAX {
            self.lane_pdr[lane as usize] = self.effective_pdr(id);
        }
    }

    /// Refreshes every link with `node` as an endpoint: its own up/down
    /// pair and each child's up/down pair.
    fn refresh_node_links(&mut self, node: NodeId) {
        let mut ids = vec![node.index() * 2, node.index() * 2 + 1];
        for &child in self.tree.children(node) {
            ids.push(child.index() * 2);
            ids.push(child.index() * 2 + 1);
        }
        for id in ids {
            self.refresh_link_quality(id);
        }
    }

    /// Drops everything `node` had queued to send (its uplink and each
    /// child's downlink), with queue-drop accounting and trace events, and
    /// releases the lanes' queue pressure.
    fn clear_sender_queues(&mut self, node: NodeId) {
        let mut ids = Vec::new();
        if self.tree.parent(node).is_some() {
            ids.push(node.index() * 2); // Link::up(node)
        }
        for &child in self.tree.children(node) {
            ids.push(child.index() * 2 + 1); // Link::down(child)
        }
        for id in ids {
            let lane = self.lane_of[id];
            if lane == u32::MAX {
                continue;
            }
            let lane = lane as usize;
            let n = self.queues[lane].len();
            if n == 0 {
                continue;
            }
            let link = self.lane_links[lane];
            self.queues[lane].clear();
            self.stats.queue_drops += n as u64;
            self.obs.metrics.inc(self.obs_ids.queue_drops, n as u64);
            for _ in 0..n {
                self.trace.record(TraceEvent::Drop { at: self.now, link });
            }
            self.note_queue_empty(lane);
        }
    }

    /// Releases `n` extra packets for `task` immediately (off the
    /// slotframe-boundary cadence), through the normal enqueue path. A
    /// burst at a crashed node is silently absorbed — the radio is off.
    fn release_burst(&mut self, id: TaskId, n: u32) {
        let Some(i) = self.tasks.iter().position(|t| t.task.id == id) else {
            return;
        };
        if self.node_down[self.tasks[i].task.source.index()] {
            return;
        }
        let route = self.tasks[i].route.clone();
        let route_lanes = self.tasks[i].route_lanes.clone();
        let seq0 = self.tasks[i].next_seq;
        self.tasks[i].next_seq += u64::from(n);
        for k in 0..u64::from(n) {
            self.stats.generated += 1;
            self.obs.metrics.inc(self.obs_ids.generated, 1);
            let packet = Packet::new(id, seq0 + k, self.now, route.clone());
            if packet.is_delivered() {
                self.obs.metrics.inc(self.obs_ids.deliveries, 1);
                self.obs.metrics.observe(self.obs_ids.latency, 0);
                self.stats
                    .record_delivery(packet.holder(), self.now, self.now);
            } else {
                self.enqueue(packet, route_lanes.clone());
            }
        }
    }

    /// Rewrites one directed link's configured PDR at runtime, outside any
    /// fault plan. Masks and crashed endpoints still override it to 0.
    ///
    /// # Errors
    ///
    /// [`PdrError`] if `pdr` is outside `[0, 1]`.
    pub fn set_link_pdr(&mut self, link: Link, pdr: f64) -> Result<(), PdrError> {
        if !(0.0..=1.0).contains(&pdr) {
            return Err(PdrError { pdr });
        }
        if let Some(id) = self.intern(link) {
            self.pdr[id as usize] = pdr;
            self.refresh_link_quality(id as usize);
        }
        Ok(())
    }

    /// Whether `node` is currently crashed by a fault plan.
    #[must_use]
    pub fn node_is_down(&self, node: NodeId) -> bool {
        node.index() < self.node_down.len() && self.node_down[node.index()]
    }

    /// Fault actions applied so far.
    #[must_use]
    pub fn faults_fired(&self) -> u64 {
        self.faults_fired
    }

    /// Fault actions still scheduled to fire.
    #[must_use]
    pub fn pending_faults(&self) -> usize {
        self.fault_calendar.len()
    }

    /// Slots the event calendar woke without finding work — the engine's
    /// core invariant pins this to 0 (always counted, observability or
    /// not; mirrored to the `sim.idle_wakeups` metric when enabled).
    #[must_use]
    pub fn idle_wakeups(&self) -> u64 {
        self.idle_wakeup_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::GlobalInterference;

    fn chain_tree() -> Tree {
        // 0 ← 1 ← 2
        Tree::from_parents(&[(1, 0), (2, 1)])
    }

    fn small_config() -> SlotframeConfig {
        SlotframeConfig::new(10, 2, 10_000).unwrap()
    }

    /// A collision-free schedule for the chain: 2→1 up at slot 0, 1→0 up at
    /// slot 1, 0→1 down at slot 2, 1→2 down at slot 3.
    fn chain_schedule() -> NetworkSchedule {
        let mut s = NetworkSchedule::new(small_config());
        s.assign(Cell::new(0, 0), Link::up(NodeId(2))).unwrap();
        s.assign(Cell::new(1, 0), Link::up(NodeId(1))).unwrap();
        s.assign(Cell::new(2, 0), Link::down(NodeId(1))).unwrap();
        s.assign(Cell::new(3, 0), Link::down(NodeId(2))).unwrap();
        s
    }

    #[test]
    fn echo_packet_round_trip_latency() {
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(chain_schedule())
            .task(Task::echo(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(3);
        let stats = sim.stats();
        assert_eq!(stats.generated, 3);
        // Packet released at slot 0 of each frame: up at slots 0,1; down at
        // slots 2,3 → delivered at end of slot 3 (latency 4 slots).
        let latencies = stats.latencies_of(NodeId(2));
        assert_eq!(latencies.len(), 3);
        assert!(latencies.iter().all(|&l| l == 4), "latencies {latencies:?}");
    }

    #[test]
    fn uplink_only_task_delivers_at_gateway() {
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(chain_schedule())
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(2);
        let latencies = sim.stats().latencies_of(NodeId(2));
        assert_eq!(latencies.len(), 2);
        assert!(latencies.iter().all(|&l| l == 2), "up in slots 0 and 1");
    }

    #[test]
    fn no_schedule_means_no_delivery() {
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .task(Task::echo(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(2);
        assert_eq!(sim.stats().deliveries.len(), 0);
        assert!(sim.queued_packets() > 0);
    }

    #[test]
    fn gateway_task_is_degenerate() {
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .task(Task::echo(TaskId(0), NodeId(0), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(1);
        assert_eq!(sim.stats().deliveries.len(), 1);
        assert_eq!(sim.stats().deliveries[0].latency_slots(), 0);
    }

    #[test]
    fn colliding_cells_block_delivery() {
        // Both uplinks on the same cell; global interference → both always
        // collide, nothing is ever delivered.
        let mut s = NetworkSchedule::new(small_config());
        s.assign(Cell::new(0, 0), Link::up(NodeId(2))).unwrap();
        s.assign(Cell::new(0, 0), Link::up(NodeId(1))).unwrap();
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(s)
            .interference(Box::new(GlobalInterference))
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
            .unwrap()
            .task(Task::uplink(TaskId(1), NodeId(1), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(2);
        assert_eq!(sim.stats().deliveries.len(), 0);
        assert!(sim.stats().collisions > 0);
    }

    #[test]
    fn two_hop_model_allows_parallel_distant_links() {
        // Star: 0 ← 1, 0 ← 2. Links up(1), up(2) share receiver 0 → they DO
        // conflict. Build deeper: 0←1←3, 0←2←4; up(3) and up(4) are distant.
        let tree = Tree::from_parents(&[(1, 0), (2, 0), (3, 1), (4, 2)]);
        let mut s = NetworkSchedule::new(small_config());
        s.assign(Cell::new(0, 0), Link::up(NodeId(3))).unwrap();
        s.assign(Cell::new(0, 0), Link::up(NodeId(4))).unwrap();
        s.assign(Cell::new(1, 0), Link::up(NodeId(1))).unwrap();
        s.assign(Cell::new(2, 0), Link::up(NodeId(2))).unwrap();
        let sim = SimulatorBuilder::new(tree, small_config())
            .schedule(s)
            .task(Task::uplink(TaskId(0), NodeId(3), Rate::per_slotframe(1)))
            .unwrap()
            .task(Task::uplink(TaskId(1), NodeId(4), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(1);
        assert_eq!(sim.stats().collisions, 0);
        assert_eq!(sim.stats().deliveries.len(), 2);
    }

    #[test]
    fn pdr_losses_are_retried_and_eventually_delivered() {
        let mut quality = LinkQuality::perfect();
        quality.set_pdr(Link::up(NodeId(2)), 0.5).unwrap();
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(chain_schedule())
            .quality(quality)
            .seed(11)
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::new(1, 2).unwrap()))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(40);
        let stats = sim.stats();
        assert!(stats.losses > 0, "a 0.5 PDR link must lose packets");
        assert!(!stats.deliveries.is_empty(), "retries eventually succeed");
    }

    #[test]
    fn retry_limit_drops_packets() {
        // Uplink PDR 0: the packet can never cross, must be dropped after
        // max_retries attempts.
        let mut quality = LinkQuality::perfect();
        quality.set_pdr(Link::up(NodeId(2)), 0.0).unwrap();
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(chain_schedule())
            .quality(quality)
            .max_retries(3)
            .task(Task::uplink(
                TaskId(0),
                NodeId(2),
                Rate::new(1, 10).unwrap(),
            ))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(10);
        assert!(sim.stats().queue_drops >= 1);
        assert_eq!(sim.queue_depth(NodeId(2)), 0, "dropped, not stuck");
    }

    #[test]
    fn queue_capacity_drops_overflow() {
        // No schedule: queues fill up at rate 2/frame with capacity 3.
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .queue_capacity(3)
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(2)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(5);
        assert_eq!(sim.queued_packets(), 3);
        assert_eq!(sim.stats().queue_drops, 10 - 3);
    }

    #[test]
    fn rate_change_takes_effect() {
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(chain_schedule())
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(2);
        assert_eq!(sim.stats().generated, 2);
        sim.set_task_rate(TaskId(0), Rate::per_slotframe(3))
            .unwrap();
        sim.run_slotframes(2);
        assert_eq!(sim.stats().generated, 2 + 6);
        assert!(matches!(
            sim.set_task_rate(TaskId(9), Rate::per_slotframe(1)),
            Err(SimError::UnknownTask(_))
        ));
    }

    #[test]
    fn schedule_mutation_at_runtime() {
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .task(Task::uplink(TaskId(0), NodeId(1), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(1);
        assert!(sim.stats().deliveries.is_empty());
        // Install the uplink cell mid-run.
        sim.schedule_mut()
            .assign(Cell::new(4, 0), Link::up(NodeId(1)))
            .unwrap();
        sim.run_slotframes(2);
        assert!(!sim.stats().deliveries.is_empty());
    }

    #[test]
    fn schedule_unassign_at_runtime_stops_traffic() {
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(chain_schedule())
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(2);
        let delivered = sim.stats().deliveries.len();
        assert!(delivered > 0);
        // Remove the first hop's cell: new packets stall at node 2.
        sim.schedule_mut().unassign_link(Link::up(NodeId(2)));
        sim.run_slotframes(3);
        assert_eq!(sim.stats().deliveries.len(), delivered);
        assert!(sim.queue_depth(NodeId(2)) > 0);
    }

    #[test]
    fn determinism_same_seed_same_stats() {
        let build = || {
            let mut quality = LinkQuality::perfect();
            quality.set_pdr(Link::up(NodeId(2)), 0.7).unwrap();
            SimulatorBuilder::new(chain_tree(), small_config())
                .schedule(chain_schedule())
                .quality(quality)
                .seed(99)
                .task(Task::echo(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
                .unwrap()
                .build()
        };
        let mut a = build();
        let mut b = build();
        a.run_slotframes(30);
        b.run_slotframes(30);
        assert_eq!(a.stats().losses, b.stats().losses);
        assert_eq!(a.stats().deliveries.len(), b.stats().deliveries.len());
    }

    #[test]
    fn builder_rejects_bad_tasks() {
        let b = SimulatorBuilder::new(chain_tree(), small_config());
        assert!(matches!(
            b.task(Task::echo(TaskId(0), NodeId(9), Rate::per_slotframe(1))),
            Err(SimError::UnknownTaskSource(_))
        ));
        let b = SimulatorBuilder::new(chain_tree(), small_config())
            .task(Task::echo(TaskId(0), NodeId(1), Rate::per_slotframe(1)))
            .unwrap();
        assert!(matches!(
            b.task(Task::echo(TaskId(0), NodeId(2), Rate::per_slotframe(1))),
            Err(SimError::DuplicateTask(_))
        ));
    }

    #[test]
    fn trace_records_outcomes() {
        let mut quality = LinkQuality::perfect();
        quality.set_pdr(Link::up(NodeId(2)), 0.5).unwrap();
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(chain_schedule())
            .quality(quality)
            .seed(5)
            .max_retries(1)
            .trace_capacity(128)
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(20);
        let trace = sim.trace();
        assert!(trace.total_recorded() > 0);
        let ok = trace.iter().filter(|e| !e.is_failure()).count();
        let losses = trace
            .iter()
            .filter(|e| matches!(e, crate::trace::TraceEvent::TxLoss { .. }))
            .count();
        assert!(ok > 0, "successes traced");
        assert!(losses > 0, "losses traced on a 0.5 PDR link");
        // Stats and trace agree on the loss count (within ring capacity).
        assert!(sim.stats().losses as usize >= losses);
    }

    #[test]
    fn trace_disabled_by_default() {
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(chain_schedule())
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(3);
        assert!(sim.trace().is_empty());
        assert_eq!(sim.trace().total_recorded(), 0);
    }

    #[test]
    fn queue_depth_by_node() {
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(2)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(1);
        assert_eq!(sim.queue_depth(NodeId(2)), 2);
        assert_eq!(sim.queue_depth(NodeId(1)), 0);
    }

    #[test]
    fn slots_simulated_counts_every_slot() {
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(chain_schedule())
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(4);
        assert_eq!(sim.stats().slots_simulated, 40);
        assert!(sim.stats().run_time > std::time::Duration::ZERO);
        assert!(sim.stats().slots_per_sec() > 0.0);
    }

    #[test]
    fn out_of_bounds_schedule_cells_are_ignored() {
        // A schedule built for a larger slotframe: cells beyond the
        // simulator's own bounds never execute, exactly as when they were
        // probed cell-by-cell.
        let big = SlotframeConfig::new(50, 8, 10_000).unwrap();
        let mut s = NetworkSchedule::new(big);
        s.assign(Cell::new(0, 0), Link::up(NodeId(2))).unwrap();
        s.assign(Cell::new(1, 0), Link::up(NodeId(1))).unwrap();
        s.assign(Cell::new(40, 0), Link::up(NodeId(2))).unwrap(); // beyond 10 slots
        s.assign(Cell::new(2, 5), Link::up(NodeId(2))).unwrap(); // beyond 2 channels
        let sim = SimulatorBuilder::new(chain_tree(), small_config())
            .schedule(s)
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(1)))
            .unwrap();
        let mut sim = sim.build();
        sim.run_slotframes(1);
        // Delivered via the two in-bounds cells only.
        assert_eq!(sim.stats().deliveries.len(), 1);
        assert_eq!(sim.stats().tx_attempts, 2);
    }
}
