//! TSCH channel hopping: mapping a cell's *channel offset* to the physical
//! radio channel actually used in a given slot.
//!
//! 802.15.4e TSCH does not transmit on a fixed frequency per cell; the
//! physical channel is `sequence[(ASN + channelOffset) mod |sequence|]`, so
//! a link's cell hops across the band every slotframe, averaging out
//! frequency-selective interference. Scheduling and collision analysis work
//! purely on channel *offsets* (two transmissions collide iff they share
//! slot and offset — hopping maps equal offsets to equal physical channels
//! and distinct offsets to distinct ones, a permutation per slot), which is
//! why the rest of this crate never needs the physical channel. This module
//! provides the mapping for completeness, for RF-level reasoning, and for
//! experiments with blacklisted (noisy) channels.

use crate::time::Asn;
use core::fmt;

/// A channel-hopping sequence: a permutation-free list of physical channels
/// indexed by `(ASN + offset) mod len`.
///
/// # Examples
///
/// ```
/// use tsch_sim::{Asn, HoppingSequence};
///
/// let seq = HoppingSequence::ieee_2_4ghz_default();
/// let ch0 = seq.physical_channel(Asn(100), 0);
/// let ch1 = seq.physical_channel(Asn(100), 1);
/// assert_ne!(ch0, ch1, "distinct offsets never share a physical channel");
/// assert_ne!(
///     seq.physical_channel(Asn(100), 0),
///     seq.physical_channel(Asn(101), 0),
///     "the same offset hops across slots"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoppingSequence {
    /// Physical channel numbers (IEEE channel ids, e.g. 11–26 at 2.4 GHz).
    channels: Vec<u16>,
}

impl HoppingSequence {
    /// The default 16-channel 2.4 GHz sequence used by the 6TiSCH minimal
    /// configuration (a fixed pseudo-random permutation of channels 11–26).
    #[must_use]
    pub fn ieee_2_4ghz_default() -> Self {
        // The 6TiSCH minimal (RFC 8180) hopping pattern.
        Self {
            channels: vec![
                16, 17, 23, 18, 26, 15, 25, 22, 19, 11, 12, 13, 24, 14, 20, 21,
            ],
        }
    }

    /// A custom sequence.
    ///
    /// # Errors
    ///
    /// Returns [`HoppingError`] if the sequence is empty or contains a
    /// duplicate physical channel (duplicates would map two distinct
    /// offsets onto one frequency and manufacture collisions).
    pub fn new(channels: Vec<u16>) -> Result<Self, HoppingError> {
        if channels.is_empty() {
            return Err(HoppingError::Empty);
        }
        let mut seen = std::collections::BTreeSet::new();
        for &c in &channels {
            if !seen.insert(c) {
                return Err(HoppingError::Duplicate(c));
            }
        }
        Ok(Self { channels })
    }

    /// Removes blacklisted (noisy) channels from the sequence — the common
    /// industrial mitigation for persistent interferers.
    ///
    /// # Errors
    ///
    /// Returns [`HoppingError::Empty`] if everything is blacklisted.
    pub fn without(&self, blacklist: &[u16]) -> Result<Self, HoppingError> {
        let channels: Vec<u16> = self
            .channels
            .iter()
            .copied()
            .filter(|c| !blacklist.contains(c))
            .collect();
        Self::new(channels)
    }

    /// Number of usable physical channels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Returns `true` for an impossible state (the constructors forbid it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The physical channel used by channel offset `offset` in slot `asn`.
    #[must_use]
    pub fn physical_channel(&self, asn: Asn, offset: u16) -> u16 {
        let idx = (asn.0 + u64::from(offset)) % self.channels.len() as u64;
        self.channels[idx as usize]
    }

    /// How many slots until `offset` revisits the same physical channel —
    /// always the sequence length (the map is a cyclic shift).
    #[must_use]
    pub fn period(&self) -> u64 {
        self.channels.len() as u64
    }
}

impl Default for HoppingSequence {
    fn default() -> Self {
        Self::ieee_2_4ghz_default()
    }
}

/// Errors constructing a [`HoppingSequence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HoppingError {
    /// The sequence has no channels.
    Empty,
    /// A physical channel appears twice.
    Duplicate(u16),
}

impl fmt::Display for HoppingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HoppingError::Empty => write!(f, "hopping sequence has no channels"),
            HoppingError::Duplicate(c) => write!(f, "physical channel {c} appears twice"),
        }
    }
}

impl std::error::Error for HoppingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_covers_all_16_ieee_channels() {
        let seq = HoppingSequence::ieee_2_4ghz_default();
        assert_eq!(seq.len(), 16);
        let mut chans: Vec<u16> = (0..16).map(|o| seq.physical_channel(Asn(0), o)).collect();
        chans.sort_unstable();
        assert_eq!(chans, (11..=26).collect::<Vec<u16>>());
    }

    #[test]
    fn distinct_offsets_never_collide_physically() {
        let seq = HoppingSequence::ieee_2_4ghz_default();
        for asn in [0u64, 1, 7, 198, 199, 1_000_003] {
            let mut seen = std::collections::BTreeSet::new();
            for offset in 0..16 {
                assert!(
                    seen.insert(seq.physical_channel(Asn(asn), offset)),
                    "offset collision at ASN {asn}"
                );
            }
        }
    }

    #[test]
    fn same_offset_hops_over_time() {
        let seq = HoppingSequence::ieee_2_4ghz_default();
        let visited: std::collections::BTreeSet<u16> = (0..seq.period())
            .map(|a| seq.physical_channel(Asn(a), 3))
            .collect();
        assert_eq!(visited.len(), 16, "one period visits every channel");
    }

    #[test]
    fn blacklisting_shrinks_the_sequence() {
        let seq = HoppingSequence::ieee_2_4ghz_default();
        let clean = seq.without(&[11, 12, 13]).unwrap();
        assert_eq!(clean.len(), 13);
        for asn in 0..clean.period() {
            for offset in 0..clean.len() as u16 {
                let c = clean.physical_channel(Asn(asn), offset);
                assert!(!(11..=13).contains(&c));
            }
        }
    }

    #[test]
    fn constructor_validation() {
        assert_eq!(
            HoppingSequence::new(vec![]).unwrap_err(),
            HoppingError::Empty
        );
        assert_eq!(
            HoppingSequence::new(vec![11, 12, 11]).unwrap_err(),
            HoppingError::Duplicate(11)
        );
        let seq = HoppingSequence::ieee_2_4ghz_default();
        assert!(seq.without(&(11..=26).collect::<Vec<_>>()).is_err());
    }

    #[test]
    fn period_is_sequence_length() {
        let seq = HoppingSequence::new(vec![11, 15, 20]).unwrap();
        assert_eq!(seq.period(), 3);
        assert_eq!(
            seq.physical_channel(Asn(0), 0),
            seq.physical_channel(Asn(3), 0)
        );
    }
}
