//! Radio link-quality model: per-link packet delivery ratios.
//!
//! The testbed experiments of the paper report occasional packet loss from
//! environmental interference (§VI-B). The simulator reproduces this with a
//! Bernoulli loss process per directed link: each transmission attempt
//! succeeds with the link's PDR; a failed attempt is retried at the link's
//! next scheduled cell.

use crate::topology::Link;
use core::fmt;
use std::collections::HashMap;

/// Per-link packet delivery ratio model.
///
/// # Examples
///
/// ```
/// use tsch_sim::{Link, LinkQuality, NodeId};
///
/// let mut q = LinkQuality::perfect();
/// assert_eq!(q.pdr(Link::up(NodeId(3))), 1.0);
/// q.set_pdr(Link::up(NodeId(3)), 0.9).unwrap();
/// assert_eq!(q.pdr(Link::up(NodeId(3))), 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkQuality {
    default_pdr: f64,
    overrides: HashMap<Link, f64>,
}

impl LinkQuality {
    /// Every transmission succeeds (no environmental loss).
    #[must_use]
    pub fn perfect() -> Self {
        Self {
            default_pdr: 1.0,
            overrides: HashMap::new(),
        }
    }

    /// A uniform PDR for every link.
    ///
    /// # Errors
    ///
    /// Returns [`PdrError`] if `pdr` is not within `[0, 1]`.
    pub fn uniform(pdr: f64) -> Result<Self, PdrError> {
        validate(pdr)?;
        Ok(Self {
            default_pdr: pdr,
            overrides: HashMap::new(),
        })
    }

    /// The PDR of a specific link.
    #[must_use]
    pub fn pdr(&self, link: Link) -> f64 {
        self.overrides
            .get(&link)
            .copied()
            .unwrap_or(self.default_pdr)
    }

    /// Overrides the PDR of one link.
    ///
    /// # Errors
    ///
    /// Returns [`PdrError`] if `pdr` is not within `[0, 1]`.
    pub fn set_pdr(&mut self, link: Link, pdr: f64) -> Result<(), PdrError> {
        validate(pdr)?;
        self.overrides.insert(link, pdr);
        Ok(())
    }
}

impl Default for LinkQuality {
    fn default() -> Self {
        Self::perfect()
    }
}

fn validate(pdr: f64) -> Result<(), PdrError> {
    if (0.0..=1.0).contains(&pdr) {
        Ok(())
    } else {
        Err(PdrError { pdr })
    }
}

/// Error for a packet delivery ratio outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdrError {
    /// The invalid value.
    pub pdr: f64,
}

impl fmt::Display for PdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "packet delivery ratio {} outside [0, 1]", self.pdr)
    }
}

impl std::error::Error for PdrError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    #[test]
    fn perfect_default() {
        let q = LinkQuality::default();
        assert_eq!(q.pdr(Link::up(NodeId(1))), 1.0);
        assert_eq!(q.pdr(Link::down(NodeId(99))), 1.0);
    }

    #[test]
    fn uniform_applies_everywhere() {
        let q = LinkQuality::uniform(0.8).unwrap();
        assert_eq!(q.pdr(Link::up(NodeId(1))), 0.8);
        assert_eq!(q.pdr(Link::down(NodeId(2))), 0.8);
    }

    #[test]
    fn overrides_are_per_direction() {
        let mut q = LinkQuality::perfect();
        q.set_pdr(Link::up(NodeId(5)), 0.5).unwrap();
        assert_eq!(q.pdr(Link::up(NodeId(5))), 0.5);
        assert_eq!(q.pdr(Link::down(NodeId(5))), 1.0);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(LinkQuality::uniform(-0.1).is_err());
        assert!(LinkQuality::uniform(1.1).is_err());
        let mut q = LinkQuality::perfect();
        assert!(q.set_pdr(Link::up(NodeId(1)), f64::NAN).is_err());
        let err = q.set_pdr(Link::up(NodeId(1)), 2.0).unwrap_err();
        assert!(err.to_string().contains("outside"));
    }
}
