//! Declarative fault injection for the slot engine.
//!
//! A [`FaultPlan`] is a list of `(Asn, FaultAction)` pairs compiled onto the
//! simulator's [`EventCalendar`](crate::EventCalendar) at build time
//! ([`SimulatorBuilder::fault_plan`](crate::SimulatorBuilder::fault_plan)).
//! Each action fires at the *exact* ASN it names — the engine drains the
//! fault calendar at the top of every slot with a single heap peek, so an
//! empty or quiescent plan costs one branch per slot and the event-driven
//! `idle_wakeups == 0` invariant is untouched (faults mutate link quality
//! and queue occupancy only through the same `note_queue_*` bookkeeping the
//! traffic paths use).
//!
//! The six scenario-level fault kinds (node crash/restart, gateway
//! failover, link-PDR degradation windows, subtree partition, traffic
//! bursts, reparenting churn) all lower onto this action set; the
//! control-plane kinds (gateway failover with re-bootstrap, reparenting)
//! additionally drive [`HarpNetwork`] operations from the scenario runner —
//! see `DESIGN.md` §14.
//!
//! # Semantics
//!
//! * **Node down** ([`FaultAction::NodeDown`]): every link adjacent to the
//!   node (its own up/down links and each child's up/down link) gets an
//!   effective PDR of 0 — frames to or from a dead radio are lost, retried,
//!   and eventually dropped by the retry limit, exactly as over a
//!   0-PDR link. Packets the node itself had queued to send are dropped
//!   immediately (a crash loses RAM), and tasks sourced at the node stop
//!   releasing packets while it is down.
//! * **Node up** ([`FaultAction::NodeUp`]): restores the adjacent links'
//!   configured PDR and resumes the node's tasks. Queues lost in the crash
//!   stay lost.
//! * **Link mask** ([`FaultAction::LinkMask`]): forces one directed link's
//!   effective PDR to 0 without touching its configured quality — the
//!   primitive under partition windows (mask every link crossing the cut).
//! * **Link PDR** ([`FaultAction::LinkPdr`]): rewrites the link's
//!   configured PDR (degradation windows restore the build-time value with
//!   a second action).
//! * **Task burst** ([`FaultAction::TaskBurst`]): releases extra packets
//!   for a task immediately, off the slotframe-boundary cadence, through
//!   the normal enqueue path (capacity drops and queue-pressure accounting
//!   included).
//! * **Task rate** ([`FaultAction::TaskRate`]): rewrites a task's release
//!   rate (traffic ramps), effective from the next slotframe boundary.
//!
//! Actions scheduled for the same ASN fire in plan order. All mutations are
//! deterministic: a plan never draws from the simulator's RNG, so the same
//! scenario + seed replays byte-identically (pinned by the
//! `fault_injection` test suite and the scenario replay tests).

use crate::packet::{Rate, TaskId};
use crate::time::Asn;
use crate::topology::{Link, NodeId};

/// One primitive fault mutation, applied at an exact ASN.
///
/// See the module docs for the semantics of each variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Crash a node: adjacent links go to effective PDR 0, its queued
    /// outbound packets are dropped, its tasks pause.
    NodeDown(NodeId),
    /// Restart a crashed node: adjacent links and tasks recover.
    NodeUp(NodeId),
    /// Force (`true`) or release (`false`) a directed link's effective PDR
    /// to 0, independent of its configured quality.
    LinkMask(Link, bool),
    /// Rewrite a directed link's configured PDR (must lie in `[0, 1]`).
    LinkPdr(Link, f64),
    /// Release `n` extra packets for the task immediately.
    TaskBurst(TaskId, u32),
    /// Rewrite the task's release rate from the next slotframe boundary.
    TaskRate(TaskId, Rate),
}

impl FaultAction {
    /// Stable tag naming the action's kind — the label fault firings carry
    /// in trace spans and flight-recorder events.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::NodeDown(_) => "node_down",
            Self::NodeUp(_) => "node_up",
            Self::LinkMask(_, true) => "link_mask",
            Self::LinkMask(_, false) => "link_unmask",
            Self::LinkPdr(..) => "link_pdr",
            Self::TaskBurst(..) => "task_burst",
            Self::TaskRate(..) => "task_rate",
        }
    }

    /// The node the action concerns (the child endpoint for link actions),
    /// or `None` for task actions.
    #[must_use]
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Self::NodeDown(n) | Self::NodeUp(n) => Some(*n),
            Self::LinkMask(link, _) | Self::LinkPdr(link, _) => Some(link.child),
            Self::TaskBurst(..) | Self::TaskRate(..) => None,
        }
    }
}

/// A deterministic schedule of [`FaultAction`]s, loaded onto the
/// simulator's event calendar at build time.
///
/// # Examples
///
/// ```
/// use tsch_sim::{Asn, FaultAction, FaultPlan, Link, NodeId};
///
/// let plan = FaultPlan::new()
///     .crash(NodeId(3), Asn(100), Some(Asn(300)))
///     .pdr_window(Link::up(NodeId(5)), Asn(50), Asn(250), 0.4, 1.0)
///     .at(Asn(400), FaultAction::LinkMask(Link::up(NodeId(7)), true));
/// assert_eq!(plan.len(), 5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(Asn, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one action at an exact ASN (builder style). Actions sharing an
    /// ASN fire in insertion order.
    #[must_use]
    pub fn at(mut self, at: Asn, action: FaultAction) -> Self {
        self.push(at, action);
        self
    }

    /// Adds one action at an exact ASN.
    pub fn push(&mut self, at: Asn, action: FaultAction) {
        self.events.push((at, action));
    }

    /// Crash `node` at `down_at`, optionally restarting it at `up_at`.
    #[must_use]
    pub fn crash(mut self, node: NodeId, down_at: Asn, up_at: Option<Asn>) -> Self {
        self.push(down_at, FaultAction::NodeDown(node));
        if let Some(up) = up_at {
            self.push(up, FaultAction::NodeUp(node));
        }
        self
    }

    /// Degrade `link` to `degraded` PDR over `[from, until)`, restoring
    /// `restore` (normally the link's configured quality) at `until`.
    #[must_use]
    pub fn pdr_window(
        mut self,
        link: Link,
        from: Asn,
        until: Asn,
        degraded: f64,
        restore: f64,
    ) -> Self {
        self.push(from, FaultAction::LinkPdr(link, degraded));
        self.push(until, FaultAction::LinkPdr(link, restore));
        self
    }

    /// Mask `link` (effective PDR 0) over `[from, until)` — the partition
    /// primitive; mask every link crossing the cut for a subtree partition.
    #[must_use]
    pub fn mask_window(mut self, link: Link, from: Asn, until: Asn) -> Self {
        self.push(from, FaultAction::LinkMask(link, true));
        self.push(until, FaultAction::LinkMask(link, false));
        self
    }

    /// The scheduled events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[(Asn, FaultAction)] {
        &self.events
    }

    /// Number of scheduled actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}
