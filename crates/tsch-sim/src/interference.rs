//! Interference models deciding when two same-cell transmissions collide.
//!
//! Two links scheduled on the *same cell* (same slot offset and channel
//! offset) may or may not actually collide, depending on radio geometry. The
//! simulator is parameterised over an [`InterferenceModel`]:
//!
//! * [`GlobalInterference`] — any two same-cell transmissions collide. The
//!   most conservative model; equals the paper's notion of a *schedule
//!   collision* (a cell assigned to more than one link).
//! * [`TwoHopInterference`] — transmissions collide when the links share a
//!   node, or a receiver is within radio range of the other sender. Range is
//!   tree adjacency plus optional extra interference edges (nodes that are
//!   physically close but not tree neighbours).

use crate::topology::{Link, NodeId, Tree};
use std::collections::{HashMap, HashSet};

/// Decides whether two links assigned to the same cell interfere.
///
/// Implementations must be symmetric: `conflicts(a, b) == conflicts(b, a)`.
pub trait InterferenceModel {
    /// Returns `true` if simultaneous transmissions on `a` and `b` (same slot
    /// and channel) fail due to interference or radio constraints.
    fn conflicts(&self, tree: &Tree, a: Link, b: Link) -> bool;

    /// Returns a *superset* of the links that may conflict with `link`, or
    /// `None` when the model has no locality to exploit (the caller must
    /// then probe every link pair).
    ///
    /// Models whose interference is bounded in the radio graph override
    /// this so the engine can build its sparse conflict adjacency in
    /// near-linear time and space; the engine still filters candidates
    /// through [`InterferenceModel::conflicts`], so over-approximation is
    /// safe while *under*-approximation is not.
    fn conflict_candidates(&self, _tree: &Tree, _link: Link) -> Option<Vec<Link>> {
        None
    }
}

/// Every pair of same-cell transmissions collides.
///
/// # Examples
///
/// ```
/// use tsch_sim::{GlobalInterference, InterferenceModel, Link, NodeId, Tree};
///
/// let tree = Tree::paper_fig1_example();
/// let m = GlobalInterference;
/// assert!(m.conflicts(&tree, Link::up(NodeId(4)), Link::up(NodeId(9))));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalInterference;

impl InterferenceModel for GlobalInterference {
    fn conflicts(&self, _tree: &Tree, _a: Link, _b: Link) -> bool {
        true
    }
}

/// Graph-based interference: links conflict when they share a node
/// (half-duplex / same-cell constraint) or when one link's receiver is in
/// radio range of the other link's sender (hidden-terminal collision).
///
/// Radio range is the tree adjacency plus any extra edges supplied at
/// construction, which model nodes that hear each other without being
/// routing neighbours.
///
/// # Examples
///
/// ```
/// use tsch_sim::{InterferenceModel, Link, NodeId, Tree, TwoHopInterference};
///
/// let tree = Tree::paper_fig1_example();
/// let m = TwoHopInterference::from_tree(&tree);
/// // Sibling uplinks share their receiver: always a conflict.
/// assert!(m.conflicts(&tree, Link::up(NodeId(4)), Link::up(NodeId(5))));
/// // Links in far-apart subtrees do not interfere.
/// assert!(!m.conflicts(&tree, Link::up(NodeId(4)), Link::up(NodeId(9))));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TwoHopInterference {
    /// Undirected extra radio edges, stored with the smaller id first.
    extra_edges: HashSet<(NodeId, NodeId)>,
    /// Per-node extra-edge partners, for candidate enumeration without
    /// scanning the whole edge set.
    extra_adjacency: HashMap<NodeId, Vec<NodeId>>,
}

impl TwoHopInterference {
    /// Interference limited to tree adjacency (no extra radio edges).
    #[must_use]
    pub fn from_tree(_tree: &Tree) -> Self {
        Self {
            extra_edges: HashSet::new(),
            extra_adjacency: HashMap::new(),
        }
    }

    /// Adds extra radio edges beyond the routing tree.
    #[must_use]
    pub fn with_extra_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut extra_edges = HashSet::new();
        let mut extra_adjacency: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (a, b) in edges {
            if extra_edges.insert(normalise(a, b)) {
                extra_adjacency.entry(a).or_default().push(b);
                extra_adjacency.entry(b).or_default().push(a);
            }
        }
        Self {
            extra_edges,
            extra_adjacency,
        }
    }

    /// Returns `true` if `a` and `b` are within radio range of each other.
    #[must_use]
    pub fn in_range(&self, tree: &Tree, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        tree.parent(a) == Some(b)
            || tree.parent(b) == Some(a)
            || self.extra_edges.contains(&normalise(a, b))
    }
}

fn normalise(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl InterferenceModel for TwoHopInterference {
    fn conflicts(&self, tree: &Tree, a: Link, b: Link) -> bool {
        let (Ok((s1, r1)), Ok((s2, r2))) = (tree.endpoints(a), tree.endpoints(b)) else {
            return false;
        };
        // Shared node: half-duplex or same-receiver constraint.
        if s1 == s2 || s1 == r2 || r1 == s2 || r1 == r2 {
            return true;
        }
        // Hidden terminal: a receiver hears the other sender.
        self.in_range(tree, s2, r1) || self.in_range(tree, s1, r2)
    }

    fn conflict_candidates(&self, tree: &Tree, link: Link) -> Option<Vec<Link>> {
        // Every conflict with `link` requires the other link to have an
        // endpoint that is either an endpoint of `link` (shared node) or a
        // radio neighbour of one (hidden terminal), so enumerating the
        // links incident to that closed neighbourhood is a complete
        // over-approximation.
        let Ok((sender, receiver)) = tree.endpoints(link) else {
            return Some(Vec::new()); // No tree edge: conflicts with nothing.
        };
        let mut nodes: Vec<NodeId> = Vec::new();
        for n in [sender, receiver] {
            nodes.push(n);
            if let Some(p) = tree.parent(n) {
                nodes.push(p);
            }
            nodes.extend_from_slice(tree.children(n));
            if let Some(extra) = self.extra_adjacency.get(&n) {
                nodes.extend_from_slice(extra);
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        let mut candidates: Vec<Link> = Vec::with_capacity(nodes.len() * 4);
        for v in nodes {
            // Links with endpoint `v`: its own up/down pair plus each
            // child's (whose far endpoint is `v`).
            candidates.push(Link::up(v));
            candidates.push(Link::down(v));
            for &c in tree.children(v) {
                candidates.push(Link::up(c));
                candidates.push(Link::down(c));
            }
        }
        Some(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Direction;

    fn tree() -> Tree {
        Tree::paper_fig1_example()
    }

    #[test]
    fn global_conflicts_everything() {
        let t = tree();
        let m = GlobalInterference;
        for a in t.links(Direction::Up) {
            for b in t.links(Direction::Down) {
                assert!(m.conflicts(&t, a, b));
            }
        }
    }

    #[test]
    fn shared_receiver_conflicts() {
        let t = tree();
        let m = TwoHopInterference::from_tree(&t);
        // 4→1 and 5→1 share receiver 1.
        assert!(m.conflicts(&t, Link::up(NodeId(4)), Link::up(NodeId(5))));
    }

    #[test]
    fn shared_sender_conflicts() {
        let t = tree();
        let m = TwoHopInterference::from_tree(&t);
        // 1→4 and 1→5 share sender 1.
        assert!(m.conflicts(&t, Link::down(NodeId(4)), Link::down(NodeId(5))));
    }

    #[test]
    fn up_and_down_of_same_edge_conflict() {
        let t = tree();
        let m = TwoHopInterference::from_tree(&t);
        assert!(m.conflicts(&t, Link::up(NodeId(4)), Link::down(NodeId(4))));
    }

    #[test]
    fn chained_links_conflict() {
        let t = tree();
        let m = TwoHopInterference::from_tree(&t);
        // 9→7 and 7→3 share node 7.
        assert!(m.conflicts(&t, Link::up(NodeId(9)), Link::up(NodeId(7))));
    }

    #[test]
    fn hidden_terminal_via_tree_edge() {
        let t = tree();
        let m = TwoHopInterference::from_tree(&t);
        // 9→7 (receiver 7) and 8→3: sender 8's parent is 3; 8 is not
        // adjacent to 7, so no conflict from that side. But 10→7 up and
        // 9's downlink 7→9: sender 7 is adjacent to receiver 7? Use a
        // clearer case: up(9) rx=7 and down(11): sender 8 adjacent to 7? No
        // (8's parent is 3, 7's parent is 3, siblings are not adjacent).
        assert!(!m.conflicts(&t, Link::up(NodeId(9)), Link::down(NodeId(11))));
        // down(7): sender 3 transmits to 7; up(11): 11 transmits to 8,
        // receiver 8 is adjacent to sender 3 (8's parent is 3) → conflict.
        assert!(m.conflicts(&t, Link::down(NodeId(7)), Link::up(NodeId(11))));
    }

    #[test]
    fn distant_links_do_not_conflict() {
        let t = tree();
        let m = TwoHopInterference::from_tree(&t);
        // 4→1 and 9→7 share nothing and are far apart.
        assert!(!m.conflicts(&t, Link::up(NodeId(4)), Link::up(NodeId(9))));
        assert!(!m.conflicts(&t, Link::down(NodeId(4)), Link::down(NodeId(9))));
    }

    #[test]
    fn extra_edges_create_conflicts() {
        let t = tree();
        // Make node 4 and node 7 radio neighbours although not tree-adjacent.
        let m = TwoHopInterference::with_extra_edges([(NodeId(4), NodeId(7))]);
        // 9→7: receiver 7 now hears sender 4 of 4→1 → conflict.
        assert!(m.conflicts(&t, Link::up(NodeId(4)), Link::up(NodeId(9))));
        // Symmetric regardless of insertion order.
        let m2 = TwoHopInterference::with_extra_edges([(NodeId(7), NodeId(4))]);
        assert!(m2.conflicts(&t, Link::up(NodeId(9)), Link::up(NodeId(4))));
    }

    #[test]
    fn conflicts_is_symmetric() {
        let t = tree();
        let m = TwoHopInterference::from_tree(&t);
        for a in t.links(Direction::Up) {
            for b in t.links(Direction::Down) {
                assert_eq!(m.conflicts(&t, a, b), m.conflicts(&t, b, a));
            }
        }
    }

    #[test]
    fn root_link_is_never_conflicting() {
        let t = tree();
        let m = TwoHopInterference::from_tree(&t);
        // Link::up(root) is invalid; conflicts must return false, not panic.
        assert!(!m.conflicts(&t, Link::up(NodeId(0)), Link::up(NodeId(4))));
    }

    #[test]
    fn conflict_candidates_cover_all_conflicts() {
        let t = tree();
        // Extra edges participate in candidate enumeration too.
        let m = TwoHopInterference::with_extra_edges([(NodeId(4), NodeId(7))]);
        let all: Vec<Link> = t
            .links(Direction::Up)
            .into_iter()
            .chain(t.links(Direction::Down))
            .collect();
        for &a in &all {
            let candidates = m.conflict_candidates(&t, a).unwrap();
            for &b in &all {
                if a != b && m.conflicts(&t, a, b) {
                    assert!(
                        candidates.contains(&b),
                        "{a:?} conflicts with {b:?} but candidates miss it"
                    );
                }
            }
        }
    }

    #[test]
    fn root_uplink_has_no_candidates() {
        let t = tree();
        let m = TwoHopInterference::from_tree(&t);
        assert_eq!(m.conflict_candidates(&t, Link::up(NodeId(0))), Some(vec![]));
    }

    #[test]
    fn in_range_adjacency() {
        let t = tree();
        let m = TwoHopInterference::from_tree(&t);
        assert!(m.in_range(&t, NodeId(1), NodeId(0)));
        assert!(m.in_range(&t, NodeId(0), NodeId(1)));
        assert!(m.in_range(&t, NodeId(4), NodeId(4)));
        assert!(
            !m.in_range(&t, NodeId(4), NodeId(5)),
            "siblings not in range"
        );
    }
}
