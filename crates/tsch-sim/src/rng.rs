//! Small deterministic RNG used inside the simulator.
//!
//! The simulator must be reproducible from a single `u64` seed (every
//! experiment in the paper reproduction is seeded), so it carries its own
//! tiny SplitMix64 generator instead of depending on an external crate.

/// SplitMix64: a fast, well-distributed 64-bit generator with a one-word
/// state. Suitable for simulation (not cryptography).
///
/// # Examples
///
/// ```
/// use tsch_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire); bias is negligible
        // for the small bounds used here (slots, channels, node counts).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent generator for a labelled subsystem, so
    /// different components consume non-overlapping streams.
    #[must_use]
    pub fn fork(&mut self, label: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ label.wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
        }
        // Roughly uniform: every residue appears over many draws.
        let mut seen = [false; 13];
        for _ in 0..10_000 {
            seen[rng.next_below(13) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SplitMix64::new(5);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}
