//! Measurement collection: latency samples, transmission counters, queue
//! occupancy.
//!
//! The experiment harness consumes these to reproduce the paper's figures:
//! per-node end-to-end latency (Fig. 9), latency over time under traffic
//! changes (Fig. 10), and transmission/collision counts (Fig. 11).
//!
//! # Storage modes
//!
//! [`SimStats`] records in one of two [`StatsMode`]s:
//!
//! * [`Full`](StatsMode::Full) (the default) keeps every
//!   [`DeliveryRecord`], so per-source percentiles and timelines are exact.
//!   Memory grows with the delivery count — fine for the paper-scale
//!   experiments, ruinous for million-node runs.
//! * [`Streaming`](StatsMode::Streaming) drops individual records and keeps
//!   only O(nodes + buckets) state: per-source count/sum/min/max plus a
//!   fixed-bucket latency histogram (bounds shared with the observability
//!   layer, [`harp_obs::LATENCY_SLOT_BOUNDS`]), and dense per-frame
//!   timelines for sources registered via
//!   [`track_timeline`](SimStats::track_timeline). Counters, per-link
//!   attempts, queue high-water marks, delivery counts, means, minima,
//!   maxima and tracked timelines are identical to `Full` mode;
//!   per-source p95 becomes a histogram interpolation instead of an exact
//!   nearest-rank.
//!
//! In both modes per-link attempts and per-node queue high-water marks live
//! in dense id-indexed vectors (one add on the hot path); the `HashMap`
//! views the analysis code consumes are materialized only on export.

use crate::time::Asn;
use crate::topology::{Direction, Link, NodeId};
use harp_obs::{HistogramSnapshot, LATENCY_SLOT_BOUNDS};
use std::collections::HashMap;
use std::time::Duration;

/// Arithmetic mean of `samples`; `0.0` for an empty slice.
#[must_use]
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// `p` is a fraction in `[0, 1]`; returns `0` for an empty slice. With
/// `p = 0.95` this is the P95 used throughout the latency summaries.
#[must_use]
pub fn percentile_nearest_rank(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let count = sorted.len();
    let rank = ((count as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, count) - 1]
}

/// One delivered end-to-end packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// The task's source node.
    pub source: NodeId,
    /// Generation time.
    pub created: Asn,
    /// Delivery time at the final destination.
    pub delivered: Asn,
}

impl DeliveryRecord {
    /// End-to-end latency in slots.
    #[must_use]
    pub fn latency_slots(&self) -> u64 {
        self.delivered.since(self.created)
    }
}

/// Simple descriptive statistics over latency samples (in slots).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean latency in slots.
    pub mean: f64,
    /// Minimum latency in slots.
    pub min: u64,
    /// Maximum latency in slots.
    pub max: u64,
    /// 95th-percentile latency in slots (nearest-rank in
    /// [`StatsMode::Full`], histogram-interpolated in
    /// [`StatsMode::Streaming`]).
    pub p95: u64,
}

impl LatencySummary {
    /// Computes a summary from raw slot latencies. Returns the default
    /// (all-zero) summary for an empty slice.
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&s| u128::from(s)).sum();
        Self {
            count,
            mean: sum as f64 / count as f64,
            min: sorted[0],
            max: sorted[count - 1],
            p95: percentile_nearest_rank(&sorted, 0.95),
        }
    }
}

/// How a [`SimStats`] retains per-delivery data. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsMode {
    /// Keep every [`DeliveryRecord`]; memory grows with deliveries.
    #[default]
    Full,
    /// Keep only streaming aggregates; memory is O(nodes + buckets).
    Streaming,
}

/// Streaming per-source latency aggregate.
#[derive(Debug, Clone, Default)]
struct SourceAgg {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Bucket counts over [`LATENCY_SLOT_BOUNDS`]; allocated on the first
    /// delivery in streaming mode only (full mode has the exact records).
    hist: Vec<u64>,
}

/// Dense per-slotframe latency timeline for one registered source.
#[derive(Debug, Clone)]
struct TimelineTracker {
    source: NodeId,
    slots_per_frame: u32,
    /// Indexed by slotframe: (latency sum, delivery count).
    frames: Vec<(u64, u64)>,
}

/// All measurements recorded by a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Every end-to-end delivery, in delivery order. Empty in
    /// [`StatsMode::Streaming`] — use [`delivered`](Self::delivered) for
    /// the count and the summary/timeline accessors for aggregates.
    pub deliveries: Vec<DeliveryRecord>,
    /// Transmission attempts (includes retries).
    pub tx_attempts: u64,
    /// Attempts that failed due to interference collisions.
    pub collisions: u64,
    /// Attempts that failed due to the radio loss process (PDR).
    pub losses: u64,
    /// Packets dropped because a queue overflowed.
    pub queue_drops: u64,
    /// Packets generated by tasks.
    pub generated: u64,
    /// Slots executed so far.
    pub slots_simulated: u64,
    /// Wall-clock time spent inside [`run_slots`](crate::Simulator::run_slots)
    /// (and [`run_slotframes`](crate::Simulator::run_slotframes)). Slots
    /// stepped one at a time via `step_slot` are counted in
    /// `slots_simulated` but not timed.
    pub run_time: Duration,
    mode: StatsMode,
    delivered: u64,
    /// Attempts per directed link, indexed by `child * 2 + direction`.
    tx_attempts_by_link: Vec<u64>,
    /// High-water mark of queued packets, indexed by node.
    queue_high_water_by_node: Vec<usize>,
    /// Per-source latency aggregates, indexed by node; maintained in both
    /// modes (they are O(nodes) and make network-wide summaries cheap).
    per_source: Vec<SourceAgg>,
    timelines: Vec<TimelineTracker>,
}

impl SimStats {
    /// Creates an empty stats collector in [`StatsMode::Full`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty collector in [`StatsMode::Streaming`].
    #[must_use]
    pub fn streaming() -> Self {
        Self {
            mode: StatsMode::Streaming,
            ..Self::default()
        }
    }

    /// The collector's storage mode.
    #[must_use]
    pub fn mode(&self) -> StatsMode {
        self.mode
    }

    /// End-to-end deliveries so far (maintained in both modes).
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    fn link_index(link: Link) -> usize {
        link.child.index() * 2 + usize::from(link.direction == Direction::Down)
    }

    fn link_of(index: usize) -> Link {
        let child = NodeId(u32::try_from(index / 2).expect("link index fits u32"));
        if index & 1 == 0 {
            Link::up(child)
        } else {
            Link::down(child)
        }
    }

    fn observe_bucket(hist: &mut [u64], latency: u64) {
        let bucket = LATENCY_SLOT_BOUNDS
            .partition_point(|&b| b < latency)
            .min(LATENCY_SLOT_BOUNDS.len());
        hist[bucket] += 1;
    }

    /// Records one transmission attempt on `link` (per-link bookkeeping
    /// only; the caller maintains the aggregate `tx_attempts` counter).
    pub fn record_tx_attempt(&mut self, link: Link) {
        let i = Self::link_index(link);
        if i >= self.tx_attempts_by_link.len() {
            self.tx_attempts_by_link.resize(i + 1, 0);
        }
        self.tx_attempts_by_link[i] += 1;
    }

    /// Transmission attempts recorded for one link so far.
    #[must_use]
    pub fn tx_attempts_of(&self, link: Link) -> u64 {
        self.tx_attempts_by_link
            .get(Self::link_index(link))
            .copied()
            .unwrap_or(0)
    }

    /// Attempts per directed link, materialized as a map (links with zero
    /// attempts are omitted).
    #[must_use]
    pub fn tx_attempts_per_link(&self) -> HashMap<Link, u64> {
        self.tx_attempts_by_link
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (Self::link_of(i), n))
            .collect()
    }

    /// Registers a per-slotframe latency timeline for `source`, so
    /// [`latency_timeline`](Self::latency_timeline) stays available in
    /// [`StatsMode::Streaming`]. Idempotent; must be called before the
    /// deliveries it should cover.
    pub fn track_timeline(&mut self, source: NodeId, slots_per_frame: u32) {
        let tracked = self
            .timelines
            .iter()
            .any(|t| t.source == source && t.slots_per_frame == slots_per_frame);
        if !tracked {
            self.timelines.push(TimelineTracker {
                source,
                slots_per_frame,
                frames: Vec::new(),
            });
        }
    }

    /// Records a delivery.
    pub fn record_delivery(&mut self, source: NodeId, created: Asn, delivered: Asn) {
        let latency = delivered.since(created);
        self.delivered += 1;
        let idx = source.index();
        if idx >= self.per_source.len() {
            self.per_source.resize_with(idx + 1, SourceAgg::default);
        }
        let agg = &mut self.per_source[idx];
        if agg.count == 0 {
            agg.min = latency;
            agg.max = latency;
        } else {
            agg.min = agg.min.min(latency);
            agg.max = agg.max.max(latency);
        }
        agg.count += 1;
        agg.sum += u128::from(latency);
        for tracker in &mut self.timelines {
            if tracker.source != source {
                continue;
            }
            let frame = usize::try_from(delivered.0 / u64::from(tracker.slots_per_frame))
                .expect("slotframe index fits usize");
            if frame >= tracker.frames.len() {
                tracker.frames.resize(frame + 1, (0, 0));
            }
            tracker.frames[frame].0 += latency;
            tracker.frames[frame].1 += 1;
        }
        match self.mode {
            StatsMode::Full => self.deliveries.push(DeliveryRecord {
                source,
                created,
                delivered,
            }),
            StatsMode::Streaming => {
                if agg.hist.is_empty() {
                    agg.hist = vec![0; LATENCY_SLOT_BOUNDS.len() + 1];
                }
                Self::observe_bucket(&mut agg.hist, latency);
            }
        }
    }

    /// Folds a shard's measurements into this collector, remapping the
    /// shard's local node ids through `node_map` (`node_map[local]` is the
    /// global [`NodeId`]) — the merge step of the sharded simulator.
    ///
    /// Counters, per-link attempts, per-source latency aggregates and
    /// delivery records add; queue high-water marks merge by maximum —
    /// shards own disjoint nodes except the shared gateway, whose true
    /// cross-shard peak the caller must reconstruct itself.
    /// `slots_simulated`, `run_time` and timeline trackers are left
    /// untouched: shards execute the same slot range concurrently, so the
    /// caller sets those once for the whole run.
    pub fn merge_shard(&mut self, other: &SimStats, node_map: &[NodeId]) {
        self.tx_attempts += other.tx_attempts;
        self.collisions += other.collisions;
        self.losses += other.losses;
        self.queue_drops += other.queue_drops;
        self.generated += other.generated;
        self.delivered += other.delivered;
        for (i, &n) in other.tx_attempts_by_link.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let local = Self::link_of(i);
            let global = Link {
                child: node_map[local.child.index()],
                direction: local.direction,
            };
            let gi = Self::link_index(global);
            if gi >= self.tx_attempts_by_link.len() {
                self.tx_attempts_by_link.resize(gi + 1, 0);
            }
            self.tx_attempts_by_link[gi] += n;
        }
        for (i, &depth) in other.queue_high_water_by_node.iter().enumerate() {
            if depth > 0 {
                self.record_queue_depth(node_map[i], depth);
            }
        }
        for (i, agg) in other.per_source.iter().enumerate() {
            if agg.count == 0 {
                continue;
            }
            let gi = node_map[i].index();
            if gi >= self.per_source.len() {
                self.per_source.resize_with(gi + 1, SourceAgg::default);
            }
            let mine = &mut self.per_source[gi];
            if mine.count == 0 {
                mine.min = agg.min;
                mine.max = agg.max;
            } else {
                mine.min = mine.min.min(agg.min);
                mine.max = mine.max.max(agg.max);
            }
            mine.count += agg.count;
            mine.sum += agg.sum;
            if !agg.hist.is_empty() {
                if mine.hist.is_empty() {
                    mine.hist = vec![0; LATENCY_SLOT_BOUNDS.len() + 1];
                }
                for (a, &b) in mine.hist.iter_mut().zip(&agg.hist) {
                    *a += b;
                }
            }
        }
        for d in &other.deliveries {
            self.deliveries.push(DeliveryRecord {
                source: node_map[d.source.index()],
                ..*d
            });
        }
    }

    /// Updates a node's queue high-water mark.
    pub fn record_queue_depth(&mut self, node: NodeId, depth: usize) {
        let i = node.index();
        if i >= self.queue_high_water_by_node.len() {
            self.queue_high_water_by_node.resize(i + 1, 0);
        }
        let entry = &mut self.queue_high_water_by_node[i];
        *entry = (*entry).max(depth);
    }

    /// One node's queue high-water mark (0 if never recorded).
    #[must_use]
    pub fn queue_high_water_of(&self, node: NodeId) -> usize {
        self.queue_high_water_by_node
            .get(node.index())
            .copied()
            .unwrap_or(0)
    }

    /// The deepest queue high-water mark across all nodes.
    #[must_use]
    pub fn max_queue_high_water(&self) -> usize {
        self.queue_high_water_by_node
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Per-node queue high-water marks, materialized as a map (nodes that
    /// never queued a packet are omitted).
    #[must_use]
    pub fn queue_high_water(&self) -> HashMap<NodeId, usize> {
        self.queue_high_water_by_node
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d > 0)
            .map(|(i, &d)| (NodeId(u32::try_from(i).expect("node index fits u32")), d))
            .collect()
    }

    /// Latency samples (slots) for packets originating at `source`. Exact
    /// records exist only in [`StatsMode::Full`]; empty when streaming.
    #[must_use]
    pub fn latencies_of(&self, source: NodeId) -> Vec<u64> {
        self.deliveries
            .iter()
            .filter(|d| d.source == source)
            .map(DeliveryRecord::latency_slots)
            .collect()
    }

    /// Latency summary for one source node. Exact in [`StatsMode::Full`];
    /// in [`StatsMode::Streaming`] the count/mean/min/max are still exact
    /// and p95 is interpolated from the per-source histogram.
    #[must_use]
    pub fn latency_summary(&self, source: NodeId) -> LatencySummary {
        match self.mode {
            StatsMode::Full => LatencySummary::from_samples(&self.latencies_of(source)),
            StatsMode::Streaming => {
                let Some(agg) = self.per_source.get(source.index()).filter(|a| a.count > 0) else {
                    return LatencySummary::default();
                };
                let snapshot = HistogramSnapshot {
                    bounds: LATENCY_SLOT_BOUNDS.to_vec(),
                    counts: agg.hist.clone(),
                    count: agg.count,
                    sum: agg.sum,
                    min: agg.min,
                    max: agg.max,
                };
                LatencySummary {
                    count: usize::try_from(agg.count).expect("delivery count fits usize"),
                    mean: agg.sum as f64 / agg.count as f64,
                    min: agg.min,
                    max: agg.max,
                    p95: snapshot.percentile(0.95),
                }
            }
        }
    }

    /// Network-wide latency histogram over [`LATENCY_SLOT_BOUNDS`], folded
    /// from the per-source aggregates. In [`StatsMode::Full`] bucket counts
    /// are rebuilt from the exact records; both modes agree.
    #[must_use]
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; LATENCY_SLOT_BOUNDS.len() + 1];
        let (mut count, mut sum) = (0u64, 0u128);
        let (mut min, mut max) = (u64::MAX, 0u64);
        for agg in self.per_source.iter().filter(|a| a.count > 0) {
            count += agg.count;
            sum += agg.sum;
            min = min.min(agg.min);
            max = max.max(agg.max);
            for (total, &n) in counts.iter_mut().zip(&agg.hist) {
                *total += n;
            }
        }
        if self.mode == StatsMode::Full {
            for d in &self.deliveries {
                Self::observe_bucket(&mut counts, d.latency_slots());
            }
        }
        HistogramSnapshot {
            bounds: LATENCY_SLOT_BOUNDS.to_vec(),
            counts,
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
        }
    }

    /// Deliveries from `source` bucketed by the slotframe of their delivery
    /// time — the Fig. 10 timeline series. Computed from exact records in
    /// [`StatsMode::Full`]; in [`StatsMode::Streaming`] the source must
    /// have been registered via [`track_timeline`](Self::track_timeline)
    /// with the same `slots_per_frame` (empty otherwise).
    #[must_use]
    pub fn latency_timeline(&self, source: NodeId, slots_per_frame: u32) -> Vec<(u64, f64)> {
        if self.mode == StatsMode::Full {
            let mut buckets: HashMap<u64, (u64, u64)> = HashMap::new();
            for d in self.deliveries.iter().filter(|d| d.source == source) {
                let frame = d.delivered.0 / u64::from(slots_per_frame);
                let e = buckets.entry(frame).or_insert((0, 0));
                e.0 += d.latency_slots();
                e.1 += 1;
            }
            let mut out: Vec<(u64, f64)> = buckets
                .into_iter()
                .map(|(frame, (sum, n))| (frame, sum as f64 / n as f64))
                .collect();
            out.sort_by_key(|&(frame, _)| frame);
            return out;
        }
        self.timelines
            .iter()
            .find(|t| t.source == source && t.slots_per_frame == slots_per_frame)
            .map(|t| {
                t.frames
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(_, n))| n > 0)
                    .map(|(frame, &(sum, n))| (frame as u64, sum as f64 / n as f64))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Simulation throughput in slots per wall-clock second, over the time
    /// accumulated in [`run_time`](Self::run_time); `0.0` before any timed
    /// run.
    #[must_use]
    pub fn slots_per_sec(&self) -> f64 {
        let secs = self.run_time.as_secs_f64();
        if secs > 0.0 {
            self.slots_simulated as f64 / secs
        } else {
            0.0
        }
    }

    /// Throughput normalized to schedule density: active-cell executions
    /// per wall-clock second, i.e. [`slots_per_sec`] scaled by
    /// `active_cells / slots_per_frame`. `active_cells` is the schedule's
    /// (cell, link) assignment count (`NetworkSchedule::assignment_count`)
    /// — per-slotframe transmission opportunities. With an event-driven
    /// engine this is the scale-study headline — it stays flat as the
    /// network grows because per-slot cost tracks the scheduled
    /// assignments, not the node count. `0.0` before any timed run or
    /// with an empty schedule.
    ///
    /// [`slots_per_sec`]: Self::slots_per_sec
    #[must_use]
    pub fn active_cell_slots_per_sec(&self, active_cells: usize, slots_per_frame: u32) -> f64 {
        if slots_per_frame == 0 {
            return 0.0;
        }
        self.slots_per_sec() * active_cells as f64 / f64::from(slots_per_frame)
    }

    /// Fraction of generated packets that were delivered.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_default() {
        let s = LatencySummary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_basic() {
        let s = LatencySummary::from_samples(&[10, 20, 30, 40]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 25.0);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 40);
        assert_eq!(s.p95, 40);
    }

    #[test]
    fn summary_p95_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.p95, 95);
    }

    #[test]
    fn summary_single_sample() {
        let s = LatencySummary::from_samples(&[7]);
        assert_eq!((s.min, s.max, s.p95, s.count), (7, 7, 7, 1));
    }

    #[test]
    fn deliveries_filter_by_source() {
        let mut stats = SimStats::new();
        stats.record_delivery(NodeId(1), Asn(0), Asn(10));
        stats.record_delivery(NodeId(2), Asn(0), Asn(20));
        stats.record_delivery(NodeId(1), Asn(5), Asn(25));
        assert_eq!(stats.latencies_of(NodeId(1)), vec![10, 20]);
        assert_eq!(stats.latency_summary(NodeId(1)).mean, 15.0);
        assert_eq!(stats.latencies_of(NodeId(3)), Vec::<u64>::new());
        assert_eq!(stats.delivered(), 3);
    }

    #[test]
    fn timeline_buckets_by_delivery_frame() {
        let mut stats = SimStats::new();
        stats.record_delivery(NodeId(1), Asn(0), Asn(5)); // frame 0
        stats.record_delivery(NodeId(1), Asn(2), Asn(9)); // frame 0
        stats.record_delivery(NodeId(1), Asn(12), Asn(25)); // frame 2
        let timeline = stats.latency_timeline(NodeId(1), 10);
        assert_eq!(timeline, vec![(0, 6.0), (2, 13.0)]);
    }

    #[test]
    fn per_link_attempts_default_to_zero() {
        let stats = SimStats::new();
        assert_eq!(stats.tx_attempts_of(Link::up(NodeId(3))), 0);
        assert!(stats.tx_attempts_per_link().is_empty());
    }

    #[test]
    fn per_link_attempts_roundtrip_through_export() {
        let mut stats = SimStats::new();
        stats.record_tx_attempt(Link::up(NodeId(3)));
        stats.record_tx_attempt(Link::up(NodeId(3)));
        stats.record_tx_attempt(Link::down(NodeId(3)));
        assert_eq!(stats.tx_attempts_of(Link::up(NodeId(3))), 2);
        assert_eq!(stats.tx_attempts_of(Link::down(NodeId(3))), 1);
        assert_eq!(stats.tx_attempts_of(Link::up(NodeId(1))), 0);
        let map = stats.tx_attempts_per_link();
        assert_eq!(map.len(), 2, "zero entries are omitted");
        assert_eq!(map[&Link::up(NodeId(3))], 2);
        assert_eq!(map[&Link::down(NodeId(3))], 1);
    }

    #[test]
    fn queue_high_water_is_monotone() {
        let mut stats = SimStats::new();
        stats.record_queue_depth(NodeId(1), 3);
        stats.record_queue_depth(NodeId(1), 1);
        stats.record_queue_depth(NodeId(1), 5);
        assert_eq!(stats.queue_high_water_of(NodeId(1)), 5);
        assert_eq!(stats.max_queue_high_water(), 5);
        assert_eq!(stats.queue_high_water(), HashMap::from([(NodeId(1), 5)]));
    }

    #[test]
    fn streaming_mode_matches_full_aggregates() {
        let mut full = SimStats::new();
        let mut streaming = SimStats::streaming();
        streaming.track_timeline(NodeId(1), 10);
        let deliveries = [
            (NodeId(1), Asn(0), Asn(5)),
            (NodeId(1), Asn(2), Asn(9)),
            (NodeId(2), Asn(0), Asn(20)),
            (NodeId(1), Asn(12), Asn(25)),
        ];
        for (source, created, delivered) in deliveries {
            full.record_delivery(source, created, delivered);
            streaming.record_delivery(source, created, delivered);
        }
        assert!(streaming.deliveries.is_empty());
        assert_eq!(streaming.delivered(), full.delivered());
        for node in [NodeId(1), NodeId(2), NodeId(3)] {
            let f = full.latency_summary(node);
            let s = streaming.latency_summary(node);
            assert_eq!(
                (f.count, f.mean, f.min, f.max),
                (s.count, s.mean, s.min, s.max)
            );
        }
        assert_eq!(
            streaming.latency_timeline(NodeId(1), 10),
            full.latency_timeline(NodeId(1), 10)
        );
        // An untracked source has no streaming timeline.
        assert!(streaming.latency_timeline(NodeId(2), 10).is_empty());
        let (fh, sh) = (full.latency_histogram(), streaming.latency_histogram());
        assert_eq!(fh, sh, "histograms agree bucket-for-bucket across modes");
        assert_eq!(fh.count, 4);
    }

    #[test]
    fn streaming_summary_p95_is_within_observed_range() {
        let mut stats = SimStats::streaming();
        for i in 0..100u64 {
            stats.record_delivery(NodeId(1), Asn(0), Asn(1 + i));
        }
        let s = stats.latency_summary(NodeId(1));
        assert_eq!((s.count, s.min, s.max), (100, 1, 100));
        assert!((90..=100).contains(&s.p95), "p95 estimate {} off", s.p95);
    }

    #[test]
    fn mean_and_percentile_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(percentile_nearest_rank(&[], 0.95), 0);
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_nearest_rank(&sorted, 0.95), 95);
        assert_eq!(percentile_nearest_rank(&sorted, 0.5), 50);
        assert_eq!(percentile_nearest_rank(&sorted, 1.0), 100);
        assert_eq!(percentile_nearest_rank(&[7], 0.95), 7);
    }

    #[test]
    fn slots_per_sec_is_zero_without_timing() {
        let mut stats = SimStats::new();
        assert_eq!(stats.slots_per_sec(), 0.0);
        stats.slots_simulated = 1000;
        stats.run_time = Duration::from_millis(500);
        assert_eq!(stats.slots_per_sec(), 2000.0);
    }

    #[test]
    fn active_cell_rate_scales_slots_per_sec_by_schedule_density() {
        let mut stats = SimStats::new();
        stats.slots_simulated = 1000;
        stats.run_time = Duration::from_millis(500);
        // 2000 slots/s × 50 active cells / 200 slots per frame.
        assert_eq!(stats.active_cell_slots_per_sec(50, 200), 500.0);
        assert_eq!(stats.active_cell_slots_per_sec(50, 0), 0.0);
        assert_eq!(stats.active_cell_slots_per_sec(0, 200), 0.0);
    }

    #[test]
    fn delivery_ratio_handles_zero_generated() {
        let stats = SimStats::new();
        assert_eq!(stats.delivery_ratio(), 1.0);
        let mut stats = SimStats::new();
        stats.generated = 4;
        stats.record_delivery(NodeId(1), Asn(0), Asn(1));
        assert_eq!(stats.delivery_ratio(), 0.25);
    }
}
