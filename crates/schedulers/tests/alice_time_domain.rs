//! Time-domain behaviour of ALICE's per-slotframe reshuffling: a pair of
//! links that collide under a static hash schedule collide *forever*, while
//! ALICE redraws cells every slotframe so the same pair eventually gets
//! through — the fairness property that motivates the design.

use harp_core::Requirements;
use schedulers::{AliceScheduler, Scheduler};
use tsch_sim::{
    GlobalInterference, Link, NetworkSchedule, Rate, SimulatorBuilder, SlotframeConfig, Task,
    TaskId, Tree,
};

/// Builds a two-branch tree whose two uplinks we steer into collision.
fn forked_tree() -> Tree {
    Tree::from_parents(&[(1, 0), (2, 0)])
}

/// A static schedule where both uplinks share one cell (persistent
/// collision under the global model).
fn colliding_static_schedule(config: SlotframeConfig) -> NetworkSchedule {
    let mut s = NetworkSchedule::new(config);
    let cell = tsch_sim::Cell::new(0, 0);
    s.assign(cell, Link::up(tsch_sim::NodeId(1))).unwrap();
    s.assign(cell, Link::up(tsch_sim::NodeId(2))).unwrap();
    s
}

fn run_with_schedule_per_frame<F>(frames: u64, mut schedule_for: F) -> (u64, u64)
where
    F: FnMut(u64) -> NetworkSchedule,
{
    let tree = forked_tree();
    let config = SlotframeConfig::paper_default();
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(schedule_for(0))
        .interference(Box::new(GlobalInterference))
        .max_retries(0);
    for (i, v) in tree.nodes().skip(1).enumerate() {
        builder = builder
            .task(Task::uplink(TaskId(i as u32), v, Rate::per_slotframe(1)))
            .unwrap();
    }
    let mut sim = builder.build();
    for frame in 0..frames {
        *sim.schedule_mut() = schedule_for(frame);
        sim.run_slotframes(1);
    }
    (sim.stats().deliveries.len() as u64, sim.stats().collisions)
}

#[test]
fn static_collision_starves_forever_alice_recovers() {
    let config = SlotframeConfig::paper_default();
    let tree = forked_tree();
    let mut reqs = Requirements::new();
    reqs.set(Link::up(tsch_sim::NodeId(1)), 1);
    reqs.set(Link::up(tsch_sim::NodeId(2)), 1);

    // Static colliding schedule: nothing ever gets through.
    let (static_delivered, static_collisions) =
        run_with_schedule_per_frame(30, |_| colliding_static_schedule(config));
    assert_eq!(static_delivered, 0, "a frozen collision never resolves");
    assert!(static_collisions > 0);

    // ALICE reshuffles per slotframe: the pair may collide in some frames
    // but delivers in most.
    let (alice_delivered, _) = run_with_schedule_per_frame(30, |frame| {
        let mut s = NetworkSchedule::new(config);
        for direction in tsch_sim::Direction::BOTH {
            for link in tree.links(direction) {
                let need = reqs.get(link);
                for cell in AliceScheduler::cells_for(link, need, frame, config) {
                    s.assign(cell, link).unwrap();
                }
            }
        }
        s
    });
    assert!(
        alice_delivered >= 50,
        "reshuffling should deliver most of the 60 packets, got {alice_delivered}"
    );
}

#[test]
fn alice_average_collision_rate_is_stable_across_frames() {
    // The long-run schedule-collision probability of ALICE, averaged over
    // many frames, matches the static frame-0 estimate within a tolerance —
    // reshuffling changes *who* collides, not *how often*.
    let config = SlotframeConfig::paper_default();
    let tree = workloads::TopologyConfig::paper_50_node().generate(3);
    let reqs = workloads::uniform_uplink_requirements(&tree, 4);

    let frame0 = AliceScheduler.build_schedule(&tree, &reqs, config, 0);
    let p0 = frame0
        .collision_report(&tree, &GlobalInterference)
        .collision_probability();

    let mut sum = 0.0;
    let frames = 40;
    for frame in 0..frames {
        let mut s = NetworkSchedule::new(config);
        for direction in tsch_sim::Direction::BOTH {
            for link in tree.links(direction) {
                for cell in AliceScheduler::cells_for(link, reqs.get(link), frame, config) {
                    s.assign(cell, link).unwrap();
                }
            }
        }
        sum += s
            .collision_report(&tree, &GlobalInterference)
            .collision_probability();
    }
    let long_run = sum / f64::from(frames as u32);
    assert!(
        (long_run - p0).abs() < 0.05,
        "frame-0 estimate {p0:.3} vs long-run {long_run:.3}"
    );
}
