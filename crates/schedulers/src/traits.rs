//! The common interface of the compared schedulers.

use harp_core::Requirements;
use tsch_sim::{NetworkSchedule, SlotframeConfig, Tree};

/// A 6TiSCH cell scheduler: given the tree and per-link demands, decide
/// which cells each link may use.
///
/// Implementations must assign *at least* `r(e)` cells to every link (all
/// the compared schedulers are work-conserving in this sense); whether the
/// resulting schedule collides is exactly what Fig. 11 measures.
///
/// Schedulers are `Send + Sync` so the experiment harness can share one
/// instance across its sweep worker threads; `build_schedule` takes `&self`,
/// so implementations keep any randomness in the per-call `seed`.
pub trait Scheduler: Send + Sync {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Builds a schedule for `tree` under `requirements`.
    ///
    /// `seed` feeds any randomised choices so experiments are reproducible;
    /// deterministic schedulers may ignore it.
    fn build_schedule(
        &self,
        tree: &Tree,
        requirements: &Requirements,
        config: SlotframeConfig,
        seed: u64,
    ) -> NetworkSchedule;
}

/// Checks the scheduler contract: every link got at least its requirement.
#[must_use]
pub fn satisfies_requirements(
    tree: &Tree,
    requirements: &Requirements,
    schedule: &NetworkSchedule,
) -> bool {
    harp_core::unsatisfied_links(tree, requirements, schedule).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::{Cell, Link, NodeId};

    #[test]
    fn satisfies_requirements_detects_shortfall() {
        let tree = Tree::from_parents(&[(1, 0)]);
        let mut reqs = Requirements::new();
        reqs.set(Link::up(NodeId(1)), 2);
        let mut schedule = NetworkSchedule::new(SlotframeConfig::paper_default());
        assert!(!satisfies_requirements(&tree, &reqs, &schedule));
        schedule
            .assign(Cell::new(0, 0), Link::up(NodeId(1)))
            .unwrap();
        assert!(!satisfies_requirements(&tree, &reqs, &schedule));
        schedule
            .assign(Cell::new(1, 0), Link::up(NodeId(1)))
            .unwrap();
        assert!(satisfies_requirements(&tree, &reqs, &schedule));
    }
}
