//! The distributed baseline schedulers of §VII-A: Random, MSF and LDSF.
//!
//! All three choose cells *autonomously per node* with no coordination —
//! fast and stateless, but nothing prevents two links from landing on the
//! same cell, which is the collision behaviour Fig. 11 quantifies.

use crate::traits::Scheduler;
use harp_core::Requirements;
use tsch_sim::{Cell, Direction, NetworkSchedule, SlotframeConfig, SplitMix64, Tree};

/// Uniformly random cell selection: each node picks `r(e)` cells for each
/// of its links anywhere in the slotframe.
///
/// # Examples
///
/// ```
/// use harp_core::Requirements;
/// use schedulers::{RandomScheduler, Scheduler};
/// use tsch_sim::{Link, NodeId, SlotframeConfig, Tree};
///
/// let tree = Tree::from_parents(&[(1, 0)]);
/// let mut reqs = Requirements::new();
/// reqs.set(Link::up(NodeId(1)), 3);
/// let s = RandomScheduler;
/// let schedule = s.build_schedule(&tree, &reqs, SlotframeConfig::paper_default(), 1);
/// assert_eq!(schedule.cells_of(Link::up(NodeId(1))).len(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomScheduler;

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn build_schedule(
        &self,
        tree: &Tree,
        requirements: &Requirements,
        config: SlotframeConfig,
        seed: u64,
    ) -> NetworkSchedule {
        crate::obs::SCHEDULES_BUILT.add(1);
        let mut rng = SplitMix64::new(seed);
        let mut schedule = NetworkSchedule::new(config);
        for direction in Direction::BOTH {
            for link in tree.links(direction) {
                let need = requirements.get(link);
                let mut granted = 0;
                while granted < need {
                    let cell = Cell::new(
                        rng.next_below(u64::from(config.slots)) as u32,
                        rng.next_below(u64::from(config.channels)) as u16,
                    );
                    // The same link must not pick one cell twice; retries are
                    // how an autonomous node resolves its own duplicates.
                    if schedule.assign(cell, link).is_ok() {
                        granted += 1;
                    }
                }
            }
        }
        schedule
    }
}

/// MSF-style autonomous cells (RFC 9033 / SAX): each link derives its cells
/// from a hash of the child node's identifier, so both endpoints agree
/// without signalling. Distinct nodes may still hash onto the same cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsfScheduler;

/// The SAX-like mixing hash used for autonomous cell derivation.
fn sax_hash(mut x: u64) -> u64 {
    // splitmix-style finalizer: cheap and well distributed, standing in for
    // the SAX string hash of the RFC (our node ids are integers).
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Scheduler for MsfScheduler {
    fn name(&self) -> &'static str {
        "msf"
    }

    fn build_schedule(
        &self,
        tree: &Tree,
        requirements: &Requirements,
        config: SlotframeConfig,
        _seed: u64,
    ) -> NetworkSchedule {
        crate::obs::SCHEDULES_BUILT.add(1);
        let mut schedule = NetworkSchedule::new(config);
        let cells_per_frame = config.cells_per_slotframe();
        for direction in Direction::BOTH {
            for link in tree.links(direction) {
                let need = requirements.get(link);
                let dir_tag = match direction {
                    Direction::Up => 0u64,
                    Direction::Down => 1u64,
                };
                let mut granted = 0;
                let mut i = 0u64;
                while granted < need {
                    let h = sax_hash((u64::from(link.child.0) << 20) ^ (dir_tag << 16) ^ i)
                        % cells_per_frame;
                    let cell = Cell::new(
                        (h / u64::from(config.channels)) as u32,
                        (h % u64::from(config.channels)) as u16,
                    );
                    if schedule.assign(cell, link).is_ok() {
                        granted += 1;
                    }
                    i += 1;
                }
            }
        }
        schedule
    }
}

/// LDSF-style layered blocks: the slotframe is divided into as many
/// equal time blocks as the network has layers; a link at layer `l` draws
/// its cells randomly *within its layer's block* (deeper layers earlier for
/// uplink, later for downlink), which shortens end-to-end latency but still
/// collides within a block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LdsfScheduler;

impl Scheduler for LdsfScheduler {
    fn name(&self) -> &'static str {
        "ldsf"
    }

    fn build_schedule(
        &self,
        tree: &Tree,
        requirements: &Requirements,
        config: SlotframeConfig,
        seed: u64,
    ) -> NetworkSchedule {
        crate::obs::SCHEDULES_BUILT.add(1);
        let mut rng = SplitMix64::new(seed ^ 0x1d5f);
        let mut schedule = NetworkSchedule::new(config);
        let layers = tree.layers().max(1);
        // One block per layer per direction, uplink half then downlink half.
        let blocks = layers * 2;
        let block_len = (config.slots / blocks).max(1);
        for direction in Direction::BOTH {
            for link in tree.links(direction) {
                let layer = tree.layer_of_link(link);
                // Uplink: deepest layer first. Downlink: shallowest first.
                let block_index = match direction {
                    Direction::Up => layers - layer,
                    Direction::Down => layers + layer - 1,
                };
                let start = (block_index * block_len).min(config.slots - 1);
                let end = if block_index + 1 == blocks {
                    config.slots
                } else {
                    ((block_index + 1) * block_len).min(config.slots)
                };
                let need = requirements.get(link);
                let mut granted = 0;
                let mut attempts = 0u32;
                while granted < need {
                    // A saturated block falls back to the whole slotframe
                    // (LDSF overflows into neighbouring blocks).
                    let (lo, hi) = if attempts < 64 {
                        (start, end)
                    } else {
                        (0, config.slots)
                    };
                    let span = hi.max(lo + 1) - lo;
                    let cell = Cell::new(
                        lo + rng.next_below(u64::from(span)) as u32,
                        rng.next_below(u64::from(config.channels)) as u16,
                    );
                    attempts += 1;
                    if schedule.assign(cell, link).is_ok() {
                        granted += 1;
                    }
                }
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::satisfies_requirements;
    use tsch_sim::{GlobalInterference, Link, NodeId};
    use workloads::TopologyConfig;

    fn setup() -> (Tree, Requirements, SlotframeConfig) {
        let tree = TopologyConfig::paper_50_node().generate(5);
        let tasks = workloads::uplink_task_per_node(&tree, tsch_sim::Rate::per_slotframe(1));
        let reqs = Requirements::from_tasks(&tree, &tasks);
        (tree, reqs, SlotframeConfig::paper_default())
    }

    #[test]
    fn all_baselines_satisfy_requirements() {
        let (tree, reqs, cfg) = setup();
        for s in [
            &RandomScheduler as &dyn Scheduler,
            &MsfScheduler,
            &LdsfScheduler,
        ] {
            let schedule = s.build_schedule(&tree, &reqs, cfg, 11);
            assert!(
                satisfies_requirements(&tree, &reqs, &schedule),
                "{} shortchanged a link",
                s.name()
            );
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let (tree, reqs, cfg) = setup();
        let a = RandomScheduler.build_schedule(&tree, &reqs, cfg, 3);
        let b = RandomScheduler.build_schedule(&tree, &reqs, cfg, 3);
        let cells_a: Vec<_> = a.iter_links().map(|(l, c)| (l, c.to_vec())).collect();
        let cells_b: Vec<_> = b.iter_links().map(|(l, c)| (l, c.to_vec())).collect();
        assert_eq!(cells_a, cells_b);
    }

    #[test]
    fn msf_ignores_seed_but_differs_per_link() {
        let (tree, reqs, cfg) = setup();
        let a = MsfScheduler.build_schedule(&tree, &reqs, cfg, 1);
        let b = MsfScheduler.build_schedule(&tree, &reqs, cfg, 999);
        let cells_a: Vec<_> = a.iter_links().map(|(l, c)| (l, c.to_vec())).collect();
        let cells_b: Vec<_> = b.iter_links().map(|(l, c)| (l, c.to_vec())).collect();
        assert_eq!(cells_a, cells_b, "hash-based selection is deterministic");
        // Different children of the same parent land on different cells.
        let c1 = a.cells_of(Link::up(NodeId(5)));
        let c2 = a.cells_of(Link::up(NodeId(6)));
        assert_ne!(c1, c2);
    }

    #[test]
    fn ldsf_respects_layer_blocks_at_low_load() {
        let (tree, reqs, cfg) = setup();
        let schedule = LdsfScheduler.build_schedule(&tree, &reqs, cfg, 2);
        let layers = tree.layers();
        let block_len = cfg.slots / (layers * 2);
        // An uplink at the deepest layer must sit in the first block (no
        // saturation at this load).
        let deep = tree
            .links(Direction::Up)
            .into_iter()
            .find(|&l| tree.layer_of_link(l) == layers)
            .unwrap();
        for cell in schedule.cells_of(deep) {
            assert!(cell.slot < block_len, "layer-{layers} uplink outside block");
        }
    }

    #[test]
    fn baselines_collide_under_load_harp_does_not() {
        // The qualitative Fig. 11 fact, pinned as a test at rate 3.
        let tree = TopologyConfig::paper_50_node().generate(8);
        let reqs = workloads::uniform_link_requirements(&tree, 3);
        let cfg = SlotframeConfig::paper_default();
        for s in [
            &RandomScheduler as &dyn Scheduler,
            &MsfScheduler,
            &LdsfScheduler,
        ] {
            let schedule = s.build_schedule(&tree, &reqs, cfg, 4);
            let report = schedule.collision_report(&tree, &GlobalInterference);
            assert!(
                report.collision_probability() > 0.0,
                "{} should collide at rate 3",
                s.name()
            );
        }
        let harp = crate::HarpScheduler::default().build_schedule(&tree, &reqs, cfg, 4);
        let report = harp.collision_report(&tree, &GlobalInterference);
        assert_eq!(report.collision_probability(), 0.0);
    }
}
