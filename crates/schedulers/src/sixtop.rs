//! 6P (6top protocol, RFC 8480) transaction costs — the signalling model
//! used by MSF-style distributed schedulers for comparison context.
//!
//! When an MSF node needs more cells toward its parent it runs one 6P ADD
//! transaction: a request listing candidate cells and a response picking
//! some — two link-local packets regardless of network depth. That makes
//! MSF's *adjustment* overhead flat and minimal; the price is paid
//! elsewhere, in schedule collisions (Fig. 11), because nothing coordinates
//! the chosen cells across the network. HARP's overhead sits between the
//! two extremes: more than a 6P pair, far less than APaS's centralized
//! round trip — while keeping the schedule provably collision-free.

use tsch_sim::{Asn, MgmtPlane, NodeId, SlotframeConfig, Tree};

/// Packets of one two-step 6P transaction (ADD/DELETE/RELOCATE): request +
/// response between a node and its parent.
///
/// # Examples
///
/// ```
/// use schedulers::sixtop_transaction_packets;
///
/// assert_eq!(sixtop_transaction_packets(), 2);
/// ```
#[must_use]
pub fn sixtop_transaction_packets() -> u64 {
    2
}

/// Result of one measured 6P transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SixtopReport {
    /// Packets exchanged (always 2 for a two-step transaction).
    pub packets: u64,
    /// Slots from the request until the response arrived.
    pub elapsed_slots: u64,
}

/// Measures one 6P ADD transaction between `node` and its parent over the
/// management plane (same timing model as the HARP and APaS measurements),
/// so the three systems' adjustment costs are directly comparable.
///
/// # Panics
///
/// Panics if `node` is the gateway.
#[must_use]
pub fn measure_sixtop_transaction(
    tree: &Tree,
    config: SlotframeConfig,
    node: NodeId,
    at: Asn,
) -> SixtopReport {
    let parent = tree
        .parent(node)
        .expect("the gateway runs no 6P transactions");
    let mut plane: MgmtPlane<&str> = MgmtPlane::new(tree, config);
    plane
        .send(tree, at, node, parent, "6P ADD request")
        .expect("parent is a neighbour");
    let mut last = at;
    while let Some(next) = plane.next_delivery() {
        for d in plane.poll(next) {
            last = last.max(d.at);
            if d.payload == "6P ADD request" {
                plane
                    .send(tree, d.at, parent, node, "6P response")
                    .expect("child is a neighbour");
            }
        }
    }
    SixtopReport {
        packets: plane.messages_sent(),
        elapsed_slots: last.since(at),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_is_two_packets_at_any_depth() {
        let tree = workloads::TopologyConfig::paper_81_node().generate(0);
        let config = SlotframeConfig::paper_default();
        for layer in [1u32, 5, 10] {
            let node = tree.nodes_at_depth(layer)[0];
            let report = measure_sixtop_transaction(&tree, config, node, Asn(0));
            assert_eq!(report.packets, sixtop_transaction_packets());
            assert!(report.elapsed_slots > 0);
            assert!(
                report.elapsed_slots <= 2 * u64::from(config.slots),
                "two one-hop messages fit two slotframes"
            );
        }
    }

    #[test]
    #[should_panic(expected = "gateway runs no 6P")]
    fn gateway_has_no_transaction() {
        let tree = tsch_sim::Tree::from_parents(&[(1, 0)]);
        let _ =
            measure_sixtop_transaction(&tree, SlotframeConfig::paper_default(), NodeId(0), Asn(0));
    }
}
