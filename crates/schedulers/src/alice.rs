//! ALICE-style autonomous link-based cell scheduling (Kim et al., IPSN'19),
//! the fourth distributed scheduler discussed by the paper's related work.
//!
//! Like MSF, ALICE derives cells from a hash both endpoints can compute
//! without signalling; unlike MSF it hashes the *directed link* (not the
//! node) and re-derives the whole schedule **every slotframe** (the ASFN —
//! absolute slotframe number — is part of the hash), so a pair of links
//! that collide in one slotframe probably will not collide in the next.
//! The long-run collision *probability* is similar to MSF's; what changes
//! is which packets lose.

use crate::traits::Scheduler;
use harp_core::Requirements;
use tsch_sim::{Cell, Direction, Link, NetworkSchedule, SlotframeConfig, Tree};

/// The ALICE scheduler. The [`Scheduler`] impl materialises slotframe 0;
/// time-varying behaviour is exposed via [`AliceScheduler::cells_for`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AliceScheduler;

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x = (x ^ (x >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

impl AliceScheduler {
    /// The cells the directed `link` uses during slotframe `asfn`, for a
    /// demand of `count` cells. Both endpoints can compute this without
    /// exchanging a single message.
    #[must_use]
    pub fn cells_for(link: Link, count: u32, asfn: u64, config: SlotframeConfig) -> Vec<Cell> {
        let dir_tag = match link.direction {
            Direction::Up => 0u64,
            Direction::Down => 1u64,
        };
        let cells_per_frame = config.cells_per_slotframe();
        let mut out = Vec::with_capacity(count as usize);
        let mut i = 0u64;
        while out.len() < count as usize {
            let h = mix((u64::from(link.child.0) << 40) ^ (dir_tag << 32) ^ (asfn << 8) ^ i)
                % cells_per_frame;
            let cell = Cell::new(
                (h / u64::from(config.channels)) as u32,
                (h % u64::from(config.channels)) as u16,
            );
            if !out.contains(&cell) {
                out.push(cell);
            }
            i += 1;
        }
        out
    }
}

impl Scheduler for AliceScheduler {
    fn name(&self) -> &'static str {
        "alice"
    }

    fn build_schedule(
        &self,
        tree: &Tree,
        requirements: &Requirements,
        config: SlotframeConfig,
        _seed: u64,
    ) -> NetworkSchedule {
        crate::obs::SCHEDULES_BUILT.add(1);
        let mut schedule = NetworkSchedule::new(config);
        for direction in Direction::BOTH {
            for link in tree.links(direction) {
                let need = requirements.get(link);
                for cell in Self::cells_for(link, need, 0, config) {
                    schedule.assign(cell, link).expect("cells_for deduplicates");
                }
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::NodeId;

    fn cfg() -> SlotframeConfig {
        SlotframeConfig::paper_default()
    }

    #[test]
    fn deterministic_and_endpoint_agreeable() {
        let a = AliceScheduler::cells_for(Link::up(NodeId(7)), 3, 5, cfg());
        let b = AliceScheduler::cells_for(Link::up(NodeId(7)), 3, 5, cfg());
        assert_eq!(a, b, "both endpoints derive the same cells");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn reshuffles_every_slotframe() {
        let f0 = AliceScheduler::cells_for(Link::up(NodeId(7)), 2, 0, cfg());
        let f1 = AliceScheduler::cells_for(Link::up(NodeId(7)), 2, 1, cfg());
        assert_ne!(f0, f1, "ALICE re-derives cells per slotframe");
    }

    #[test]
    fn directions_get_distinct_cells() {
        let up = AliceScheduler::cells_for(Link::up(NodeId(7)), 2, 0, cfg());
        let down = AliceScheduler::cells_for(Link::down(NodeId(7)), 2, 0, cfg());
        assert_ne!(up, down);
    }

    #[test]
    fn no_duplicate_cells_within_a_link() {
        let cells = AliceScheduler::cells_for(Link::up(NodeId(3)), 20, 2, cfg());
        let mut dedup = cells.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), cells.len());
    }

    #[test]
    fn scheduler_satisfies_requirements() {
        let tree = workloads::TopologyConfig::paper_50_node().generate(4);
        let reqs = workloads::uniform_uplink_requirements(&tree, 2);
        let s = AliceScheduler.build_schedule(&tree, &reqs, cfg(), 0);
        assert!(crate::satisfies_requirements(&tree, &reqs, &s));
    }
}
