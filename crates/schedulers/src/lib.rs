//! The schedulers compared in the HARP paper's evaluation: the Random, MSF
//! and LDSF distributed baselines (Fig. 11), HARP itself behind the same
//! interface, and the centralized APaS adjustment baseline (Fig. 12).
//!
//! # Examples
//!
//! ```
//! use harp_core::Requirements;
//! use schedulers::{HarpScheduler, RandomScheduler, Scheduler};
//! use tsch_sim::{GlobalInterference, Link, NodeId, SlotframeConfig, Tree};
//!
//! let tree = Tree::paper_fig1_example();
//! let mut reqs = Requirements::new();
//! for v in tree.nodes().skip(1) {
//!     reqs.set(Link::up(v), 1);
//! }
//! let cfg = SlotframeConfig::paper_default();
//! let harp = HarpScheduler::default().build_schedule(&tree, &reqs, cfg, 0);
//! assert!(harp.is_exclusive());
//! let random = RandomScheduler.build_schedule(&tree, &reqs, cfg, 0);
//! let _ = random.collision_report(&tree, &GlobalInterference);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alice;
mod apas;
mod baselines;
mod harp_adapter;
mod msf_adaptive;
mod sixtop;
mod traits;

pub use alice::AliceScheduler;
pub use apas::{apas_adjustment_packets, ApasNetwork, ApasReport};
pub use baselines::{LdsfScheduler, MsfScheduler, RandomScheduler};
pub use harp_adapter::HarpScheduler;
pub use msf_adaptive::{MsfAdaptiveNetwork, LIM_HIGH, LIM_LOW};
pub use sixtop::{measure_sixtop_transaction, sixtop_transaction_packets, SixtopReport};
pub use traits::{satisfies_requirements, Scheduler};

/// Process-wide activity counters of the scheduler comparison suite.
///
/// Always-on relaxed atomics ([`harp_obs::StaticCounter`]); one fetch-add
/// per built schedule. Fold into a snapshot with
/// [`harp_obs::MetricsSnapshot::add_counters`] via [`totals`](obs::totals).
pub mod obs {
    use harp_obs::StaticCounter;

    /// Full network schedules built via [`Scheduler::build_schedule`](crate::Scheduler::build_schedule),
    /// summed over every scheduler implementation.
    pub static SCHEDULES_BUILT: StaticCounter = StaticCounter::new();

    /// Current totals, in the shape
    /// [`MetricsSnapshot::add_counters`](harp_obs::MetricsSnapshot::add_counters)
    /// accepts. Process-wide and monotonic.
    #[must_use]
    pub fn totals() -> [(&'static str, u64); 1] {
        [("schedulers.schedules_built", SCHEDULES_BUILT.get())]
    }
}
