//! Adaptive MSF (RFC 9033 §5): usage-driven cell management over a running
//! network.
//!
//! A real MSF node does not know its demand in cells — it watches how busy
//! its scheduled cells toward the parent are and adapts:
//!
//! * usage ≥ `LIM_HIGH` (75 %) → run a 6P ADD for one more autonomous cell;
//! * usage ≤ `LIM_LOW` (25 %) and more than one cell → 6P DELETE.
//!
//! Each transaction costs two link-local packets regardless of depth, which
//! is why MSF's adjustment overhead is flat (see `fig12_overhead`) — but
//! the added cells come from the node-local hash with no coordination, so
//! they can land on occupied cells and collide. [`MsfAdaptiveNetwork`]
//! implements the monitor-and-adapt loop against the simulator, closing the
//! loop the static Fig. 11 comparison abstracts away.

use crate::baselines::MsfScheduler;
use crate::traits::Scheduler;
use harp_core::Requirements;
use std::collections::BTreeMap;
use tsch_sim::{Direction, Link, Simulator, Tree};

/// RFC 9033's upper usage threshold.
pub const LIM_HIGH: f64 = 0.75;
/// RFC 9033's lower usage threshold.
pub const LIM_LOW: f64 = 0.25;

/// The adaptive MSF control loop over a running [`Simulator`].
#[derive(Debug)]
pub struct MsfAdaptiveNetwork {
    tree: Tree,
    /// Cells currently scheduled per link.
    cells: BTreeMap<Link, u32>,
    /// Attempt counters at the last observation, for windowed usage.
    last_attempts: BTreeMap<Link, u64>,
    /// 6P packets exchanged so far.
    sixtop_packets: u64,
}

impl MsfAdaptiveNetwork {
    /// Starts the control loop with one cell per link (MSF's bootstrap
    /// autonomous cell), installing them into the simulator's schedule.
    ///
    /// # Panics
    ///
    /// Panics if the simulator's schedule already contains conflicting
    /// duplicate assignments for these links.
    #[must_use]
    pub fn bootstrap(tree: &Tree, sim: &mut Simulator) -> Self {
        let mut reqs = Requirements::new();
        for d in Direction::BOTH {
            for link in tree.links(d) {
                reqs.set(link, 1);
            }
        }
        let schedule = MsfScheduler.build_schedule(tree, &reqs, sim.config(), 0);
        *sim.schedule_mut() = schedule;
        let cells = tree
            .links(Direction::Up)
            .into_iter()
            .chain(tree.links(Direction::Down))
            .map(|l| (l, 1u32))
            .collect();
        Self {
            tree: tree.clone(),
            cells,
            last_attempts: BTreeMap::new(),
            sixtop_packets: 0,
        }
    }

    /// Total 6P packets exchanged by all adaptations so far.
    #[must_use]
    pub fn sixtop_packets(&self) -> u64 {
        self.sixtop_packets
    }

    /// Cells currently scheduled on `link`.
    #[must_use]
    pub fn cells_of(&self, link: Link) -> u32 {
        self.cells.get(&link).copied().unwrap_or(0)
    }

    /// One observation round, to be called every `frames` slotframes: for
    /// each link, compute the usage of its cells over the window and adapt.
    /// Returns how many links changed their cell count.
    pub fn observe_and_adapt(&mut self, sim: &mut Simulator, frames: u64) -> usize {
        let mut changed = 0;
        let links: Vec<Link> = self.cells.keys().copied().collect();
        for link in links {
            let scheduled = self.cells[&link];
            let total = sim.stats().tx_attempts_of(link);
            let window = total - self.last_attempts.get(&link).copied().unwrap_or(0);
            self.last_attempts.insert(link, total);
            let capacity = u64::from(scheduled) * frames;
            if capacity == 0 {
                continue;
            }
            let usage = window as f64 / capacity as f64;
            if usage >= LIM_HIGH {
                self.resize(sim, link, scheduled + 1);
                changed += 1;
            } else if usage <= LIM_LOW && scheduled > 1 {
                self.resize(sim, link, scheduled - 1);
                changed += 1;
            }
        }
        changed
    }

    /// Runs one 6P transaction resizing `link` to `new_count` cells and
    /// reinstalls the link's autonomous cells in the simulator.
    fn resize(&mut self, sim: &mut Simulator, link: Link, new_count: u32) {
        self.sixtop_packets += crate::sixtop::sixtop_transaction_packets();
        self.cells.insert(link, new_count);
        let mut reqs = Requirements::new();
        reqs.set(link, new_count);
        // Re-derive this link's autonomous cells; other links keep theirs.
        let fresh = MsfScheduler.build_schedule(&self.tree, &reqs, sim.config(), 0);
        let schedule = sim.schedule_mut();
        schedule.unassign_link(link);
        for &cell in fresh.cells_of(link) {
            // The hash may land on a cell this link's *own* other entries
            // use; MsfScheduler already deduplicates per link. Collisions
            // with other links are allowed — that is MSF's trade-off.
            schedule
                .assign(cell, link)
                .expect("per-link cells are distinct");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::{NodeId, Rate, SimulatorBuilder, SlotframeConfig, Task, TaskId};

    fn chain() -> Tree {
        Tree::from_parents(&[(1, 0), (2, 1)])
    }

    #[test]
    fn bootstrap_installs_one_cell_per_link() {
        let tree = chain();
        let mut sim = SimulatorBuilder::new(tree.clone(), SlotframeConfig::paper_default()).build();
        let msf = MsfAdaptiveNetwork::bootstrap(&tree, &mut sim);
        for d in Direction::BOTH {
            for link in tree.links(d) {
                assert_eq!(msf.cells_of(link), 1);
                assert_eq!(sim.schedule().cells_of(link).len(), 1);
            }
        }
        assert_eq!(msf.sixtop_packets(), 0);
    }

    #[test]
    fn overload_triggers_cell_addition() {
        let tree = chain();
        let config = SlotframeConfig::paper_default();
        let mut sim = SimulatorBuilder::new(tree.clone(), config)
            .task(Task::uplink(TaskId(0), NodeId(2), Rate::per_slotframe(3)))
            .unwrap()
            .build();
        let mut msf = MsfAdaptiveNetwork::bootstrap(&tree, &mut sim);
        // 3 packets/frame through 1 cell/frame: usage pinned at 100 %.
        let mut adds = 0;
        for _ in 0..6 {
            sim.run_slotframes(4);
            adds += msf.observe_and_adapt(&mut sim, 4);
        }
        assert!(adds > 0, "MSF must add cells under overload");
        assert!(msf.cells_of(Link::up(NodeId(2))) > 1);
        // Each change is one two-packet transaction.
        assert_eq!(msf.sixtop_packets(), 2 * adds as u64);
        assert!(
            sim.schedule().cells_of(Link::up(NodeId(2))).len() as u32
                == msf.cells_of(Link::up(NodeId(2)))
        );
    }

    #[test]
    fn idle_links_shed_cells_down_to_one() {
        let tree = chain();
        let config = SlotframeConfig::paper_default();
        let mut sim = SimulatorBuilder::new(tree.clone(), config).build();
        let mut msf = MsfAdaptiveNetwork::bootstrap(&tree, &mut sim);
        // Grow a link artificially, then starve it.
        msf.resize(&mut sim, Link::up(NodeId(2)), 4);
        sim.run_slotframes(4);
        for _ in 0..8 {
            msf.observe_and_adapt(&mut sim, 4);
            sim.run_slotframes(4);
        }
        assert_eq!(
            msf.cells_of(Link::up(NodeId(2))),
            1,
            "sheds back to one cell"
        );
    }

    #[test]
    fn adaptation_cost_is_flat_in_depth() {
        // Adding a cell at layer 1 and at layer 5 both cost one 6P pair.
        let tree = workloads::TopologyConfig::paper_50_node().generate(2);
        let config = SlotframeConfig::paper_default();
        let mut sim = SimulatorBuilder::new(tree.clone(), config).build();
        let mut msf = MsfAdaptiveNetwork::bootstrap(&tree, &mut sim);
        let shallow = tree.nodes_at_depth(1)[0];
        let deep = tree.nodes_at_depth(5)[0];
        let before = msf.sixtop_packets();
        msf.resize(&mut sim, Link::up(shallow), 2);
        let shallow_cost = msf.sixtop_packets() - before;
        let before = msf.sixtop_packets();
        msf.resize(&mut sim, Link::up(deep), 2);
        let deep_cost = msf.sixtop_packets() - before;
        assert_eq!(shallow_cost, deep_cost);
        assert_eq!(shallow_cost, 2);
    }
}
