//! APaS — the centralized adjustment baseline of §VII-B.
//!
//! APaS (RTAS'21, same authors) keeps the whole schedule at the gateway.
//! When a node's demand changes, the request travels hop-by-hop to the
//! root; the root computes new cells for the node *and its parent* and
//! sends both updates back down. For a node at layer `l` that costs
//! `l` (request up) + `l` (update to the node) + `l − 1` (update to the
//! parent) = `3l − 1` management packets — the formula the paper derives
//! and Fig. 12 plots. [`ApasNetwork`] reproduces the exchange over the
//! simulated management plane so both the packet count and the elapsed
//! time are measured rather than assumed.

use tsch_sim::{Asn, ControlPlane, NodeId, SlotframeConfig, Tree};

/// The analytic per-adjustment packet cost of APaS for a node at `layer`.
///
/// # Examples
///
/// ```
/// use schedulers::apas_adjustment_packets;
///
/// assert_eq!(apas_adjustment_packets(1), 2);
/// assert_eq!(apas_adjustment_packets(5), 14);
/// ```
#[must_use]
pub fn apas_adjustment_packets(layer: u32) -> u64 {
    u64::from(3 * layer - 1)
}

/// A hop-by-hop APaS management message.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ApasMessage {
    /// A demand-change request being relayed toward the root.
    Request {
        /// The node whose demand changed.
        origin: NodeId,
    },
    /// A schedule update being relayed toward `target`.
    Update {
        /// The node that must install the new cells.
        target: NodeId,
    },
}

/// Result of one APaS adjustment round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApasReport {
    /// Management packets exchanged (should equal `3·layer − 1`).
    pub packets: u64,
    /// Slots from the request until the last update arrived.
    pub elapsed_slots: u64,
}

impl ApasReport {
    /// Elapsed time in whole slotframes, rounded up.
    #[must_use]
    pub fn slotframes(&self, config: SlotframeConfig) -> u64 {
        self.elapsed_slots.div_ceil(u64::from(config.slots))
    }
}

/// A centralized APaS deployment over the simulated management plane.
#[derive(Debug)]
pub struct ApasNetwork {
    tree: Tree,
    plane: ControlPlane<ApasMessage>,
    now: Asn,
}

impl ApasNetwork {
    /// Builds the deployment.
    #[must_use]
    pub fn new(tree: Tree, config: SlotframeConfig) -> Self {
        let plane = ControlPlane::reliable(&tree, config);
        Self {
            tree,
            plane,
            now: Asn::ZERO,
        }
    }

    /// The current clock.
    #[must_use]
    pub fn now(&self) -> Asn {
        self.now
    }

    /// Executes one adjustment for a demand change at `node`, relaying the
    /// request to the root and the two updates back down, and returns the
    /// measured cost.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the gateway (the root adjusts itself for free).
    pub fn adjust(&mut self, at: Asn, node: NodeId) -> ApasReport {
        assert_ne!(
            node,
            self.tree.root(),
            "the gateway has no uplink to adjust"
        );
        self.now = self.now.max(at);
        let start = self.now;
        let sent_before = self.plane.messages_sent();

        let parent = self.tree.parent(node).expect("non-root node");
        let mut pending_updates = 0u32;
        // The request leaves `node` toward its parent.
        self.plane
            .send(
                &self.tree,
                self.now,
                node,
                parent,
                ApasMessage::Request { origin: node },
            )
            .expect("parent is a neighbour");

        let mut last_delivery = self.now;
        while let Some(next) = self.plane.next_event() {
            self.now = next;
            let delivered = self
                .plane
                .poll(&self.tree, next)
                .expect("reliable transport never exhausts retries");
            for d in delivered {
                last_delivery = last_delivery.max(d.at);
                match d.payload {
                    ApasMessage::Request { origin } => {
                        if d.to == self.tree.root() {
                            // Root recomputes and issues the two updates.
                            for target in [origin, self.tree.parent(origin).expect("non-root")] {
                                if target == self.tree.root() {
                                    continue; // the root updates itself locally
                                }
                                pending_updates += 1;
                                let first_hop = self.next_hop_down(self.tree.root(), target);
                                self.plane
                                    .send(
                                        &self.tree,
                                        d.at,
                                        self.tree.root(),
                                        first_hop,
                                        ApasMessage::Update { target },
                                    )
                                    .expect("first hop is a neighbour");
                            }
                        } else {
                            let up = self.tree.parent(d.to).expect("relay is not the root");
                            self.plane
                                .send(&self.tree, d.at, d.to, up, ApasMessage::Request { origin })
                                .expect("parent is a neighbour");
                        }
                    }
                    ApasMessage::Update { target } => {
                        if d.to == target {
                            pending_updates -= 1;
                        } else {
                            let hop = self.next_hop_down(d.to, target);
                            self.plane
                                .send(&self.tree, d.at, d.to, hop, ApasMessage::Update { target })
                                .expect("next hop is a neighbour");
                        }
                    }
                }
            }
            if pending_updates == 0 && self.plane.in_flight() == 0 {
                break;
            }
        }

        ApasReport {
            packets: self.plane.messages_sent() - sent_before,
            elapsed_slots: last_delivery.since(start),
        }
    }

    /// The child of `from` on the path down to `target`.
    fn next_hop_down(&self, from: NodeId, target: NodeId) -> NodeId {
        let mut cur = target;
        loop {
            let parent = self.tree.parent(cur).expect("target below from");
            if parent == from {
                return cur;
            }
            cur = parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::TopologyConfig;

    #[test]
    fn packet_count_matches_formula_on_chain() {
        // 0 ← 1 ← 2 ← 3: adjusting node 3 (layer 3) costs 3+3+2 = 8 = 3l-1.
        let tree = Tree::from_parents(&[(1, 0), (2, 1), (3, 2)]);
        let cfg = SlotframeConfig::paper_default();
        let mut net = ApasNetwork::new(tree.clone(), cfg);
        for node in [1u32, 2, 3] {
            let mut fresh = ApasNetwork::new(tree.clone(), cfg);
            let layer = tree.depth(NodeId(node));
            let report = fresh.adjust(Asn(0), NodeId(node));
            assert_eq!(
                report.packets,
                apas_adjustment_packets(layer),
                "node {node} at layer {layer}"
            );
        }
        let _ = net.adjust(Asn(0), NodeId(3));
    }

    #[test]
    fn deep_nodes_cost_proportionally_more() {
        let tree = TopologyConfig::paper_81_node().generate(0);
        let cfg = SlotframeConfig::paper_default();
        let mut last = 0;
        for layer in 1..=10 {
            let node = tree.nodes_at_depth(layer)[0];
            let mut net = ApasNetwork::new(tree.clone(), cfg);
            let report = net.adjust(Asn(0), node);
            assert_eq!(report.packets, apas_adjustment_packets(layer));
            assert!(report.packets > last);
            last = report.packets;
        }
    }

    #[test]
    fn elapsed_time_grows_with_depth() {
        let tree = TopologyConfig::paper_81_node().generate(1);
        let cfg = SlotframeConfig::paper_default();
        let shallow = {
            let node = tree.nodes_at_depth(1)[0];
            ApasNetwork::new(tree.clone(), cfg).adjust(Asn(0), node)
        };
        let deep = {
            let node = tree.nodes_at_depth(10)[0];
            ApasNetwork::new(tree.clone(), cfg).adjust(Asn(0), node)
        };
        assert!(deep.elapsed_slots > shallow.elapsed_slots);
        assert!(deep.slotframes(cfg) >= shallow.slotframes(cfg));
    }

    #[test]
    #[should_panic(expected = "gateway has no uplink")]
    fn adjusting_the_gateway_panics() {
        let tree = Tree::from_parents(&[(1, 0)]);
        ApasNetwork::new(tree, SlotframeConfig::paper_default()).adjust(Asn(0), NodeId(0));
    }
}
