//! HARP as a [`Scheduler`]: the centralized pipeline packaged behind the
//! common interface, so the collision experiments can sweep all four
//! schedulers uniformly.

use crate::traits::Scheduler;
use harp_core::{
    allocate_partitions_unbounded, build_interfaces, generate_schedule, Requirements,
    SchedulingPolicy,
};
use tsch_sim::{Direction, NetworkSchedule, SlotframeConfig, Tree};

/// The HARP scheduler (hierarchical partitioning + local RM assignment).
///
/// Uses the *unbounded* allocation so that overload — a demand the
/// slotframe cannot hold, e.g. the ≤4-channel points of Fig. 11(b) — wraps
/// around and degrades into measurable collisions instead of failing, which
/// is how the paper reports those points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HarpScheduler {
    /// Link-ordering policy inside each partition row.
    pub policy: SchedulingPolicy,
}

impl Scheduler for HarpScheduler {
    fn name(&self) -> &'static str {
        "harp"
    }

    fn build_schedule(
        &self,
        tree: &Tree,
        requirements: &Requirements,
        config: SlotframeConfig,
        _seed: u64,
    ) -> NetworkSchedule {
        crate::obs::SCHEDULES_BUILT.add(1);
        let up = build_interfaces(tree, requirements, Direction::Up, config.channels)
            .expect("per-link demands fit the channel budget");
        let down = build_interfaces(tree, requirements, Direction::Down, config.channels)
            .expect("per-link demands fit the channel budget");
        let table = allocate_partitions_unbounded(tree, &up, &down, config);
        generate_schedule(tree, requirements, &table, self.policy)
            .expect("unbounded allocation always yields enough cells per row")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsch_sim::GlobalInterference;
    use workloads::TopologyConfig;

    #[test]
    fn harp_is_collision_free_within_capacity() {
        let tree = TopologyConfig::paper_50_node().generate(1);
        // Fig. 11's demand model: every link needs `rate` cells.
        let reqs = workloads::uniform_link_requirements(&tree, 2);
        let schedule = HarpScheduler::default().build_schedule(
            &tree,
            &reqs,
            SlotframeConfig::paper_default(),
            0,
        );
        assert!(schedule.is_exclusive());
        assert!(crate::satisfies_requirements(&tree, &reqs, &schedule));
        let report = schedule.collision_report(&tree, &GlobalInterference);
        assert_eq!(report.collision_probability(), 0.0);
    }

    #[test]
    fn harp_degrades_gracefully_when_channels_starved() {
        // Rate 3 over a single channel cannot fit the slotframe: HARP wraps
        // and collides a little instead of refusing (the starved tail of
        // Fig. 11(b); the exact crossover channel count depends on the
        // demand model, the graceful-degradation behaviour is what matters).
        let tree = TopologyConfig::paper_50_node().generate(1);
        let reqs = workloads::uniform_link_requirements(&tree, 3);
        let cfg = SlotframeConfig::paper_default().with_channels(1).unwrap();
        let schedule = HarpScheduler::default().build_schedule(&tree, &reqs, cfg, 0);
        assert!(!schedule.is_exclusive(), "overload must wrap");
        let report = schedule.collision_report(&tree, &GlobalInterference);
        assert!(report.collision_probability() > 0.0);
        assert!(crate::satisfies_requirements(&tree, &reqs, &schedule));
    }
}
