//! Seeded fuzz of the HTTP request parser: whatever bytes arrive, the
//! parser must return `Complete`, `Incomplete` or a 4xx — never panic,
//! never claim progress it did not make, and never mis-frame a pipeline.

use harpd::http::{try_parse, Parsed, MAX_HEAD_BYTES};
use tsch_sim::SplitMix64;

const VALID: &str = "POST /networks/t-1/adjust?verbose=1 HTTP/1.1\r\nhost: h\r\ncontent-length: 17\r\n\r\n{\"node\":9,\"c\":2}\n";

/// Drives `try_parse` and asserts its structural invariants.
fn check_invariants(bytes: &[u8]) {
    match try_parse(bytes) {
        Ok(Parsed::Complete(req, consumed)) => {
            assert!(consumed <= bytes.len(), "consumed beyond the buffer");
            assert!(consumed > 0, "complete parse must consume bytes");
            assert!(!req.method.is_empty());
            assert!(req.path.starts_with('/'));
        }
        Ok(Parsed::Incomplete) => {
            assert!(
                bytes.len() < MAX_HEAD_BYTES || bytes.windows(4).any(|w| w == b"\r\n\r\n"),
                "oversized heads must reject, not stall"
            );
        }
        Err(err) => {
            assert!(
                (400..500).contains(&err.status),
                "parser failures are client errors, got {}",
                err.status
            );
            assert!(!err.message.is_empty());
        }
    }
}

#[test]
fn fuzz_random_bytes_never_panic() {
    let mut rng = SplitMix64::new(0xFA22_0001);
    for _ in 0..2000 {
        let len = rng.next_below(512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_below(256)) as u8).collect();
        check_invariants(&bytes);
    }
}

#[test]
fn fuzz_mutated_valid_requests_never_panic() {
    let mut rng = SplitMix64::new(0xFA22_0002);
    for _ in 0..2000 {
        let mut bytes = VALID.as_bytes().to_vec();
        for _ in 0..=rng.next_below(4) {
            match rng.next_below(3) {
                0 => {
                    // Flip one byte.
                    let i = rng.next_below(bytes.len() as u64) as usize;
                    bytes[i] = rng.next_below(256) as u8;
                }
                1 => {
                    // Truncate.
                    let i = rng.next_below(bytes.len() as u64) as usize;
                    bytes.truncate(i);
                    if bytes.is_empty() {
                        bytes.push(b'G');
                    }
                }
                _ => {
                    // Duplicate a slice into the middle.
                    let a = rng.next_below(bytes.len() as u64) as usize;
                    let b = rng.next_below(bytes.len() as u64) as usize;
                    let (lo, hi) = (a.min(b), a.max(b));
                    let slice: Vec<u8> = bytes[lo..hi].to_vec();
                    let at = rng.next_below(bytes.len() as u64) as usize;
                    for (k, byte) in slice.into_iter().enumerate() {
                        bytes.insert(at + k, byte);
                    }
                }
            }
        }
        check_invariants(&bytes);
    }
}

#[test]
fn fuzz_split_reads_agree_with_whole_buffer() {
    // Feeding any prefix must yield Incomplete or the same terminal state
    // as the whole message — a split read can never flip a verdict.
    let mut rng = SplitMix64::new(0xFA22_0003);
    let whole = try_parse(VALID.as_bytes()).expect("valid request parses");
    let Parsed::Complete(ref req, consumed) = whole else {
        panic!("expected complete");
    };
    assert_eq!(consumed, VALID.len());
    for _ in 0..200 {
        let cut = rng.next_below(VALID.len() as u64) as usize;
        match try_parse(&VALID.as_bytes()[..cut]) {
            Ok(Parsed::Incomplete) => {}
            Ok(Parsed::Complete(_, c)) => panic!("prefix of {cut} bytes claimed complete at {c}"),
            Err(e) => panic!("prefix of {cut} bytes errored: {e}"),
        }
    }
    // Byte-by-byte growth reaches exactly the same request.
    for cut in 0..VALID.len() {
        if let Ok(Parsed::Complete(r, _)) = try_parse(&VALID.as_bytes()[..cut]) {
            panic!("premature completion at {cut}: {r:?}");
        }
    }
    let Parsed::Complete(again, _) = try_parse(VALID.as_bytes()).unwrap() else {
        panic!()
    };
    assert_eq!(&again, req);
}

#[test]
fn fuzz_pipelined_messages_frame_exactly() {
    let mut rng = SplitMix64::new(0xFA22_0004);
    for _ in 0..200 {
        let n = 1 + rng.next_below(5) as usize;
        let mut buf = Vec::new();
        for i in 0..n {
            buf.extend_from_slice(
                format!("GET /networks/t{i}/schedule HTTP/1.1\r\nhost: h\r\n\r\n").as_bytes(),
            );
        }
        let mut offset = 0usize;
        for i in 0..n {
            match try_parse(&buf[offset..]).expect("pipelined request parses") {
                Parsed::Complete(req, consumed) => {
                    assert_eq!(req.path, format!("/networks/t{i}/schedule"));
                    offset += consumed;
                }
                Parsed::Incomplete => panic!("message {i} incomplete at offset {offset}"),
            }
        }
        assert_eq!(offset, buf.len(), "pipeline must consume every byte");
    }
}

#[test]
fn oversized_heads_reject_without_scanning_forever() {
    // A header that never terminates must reject at the cap, both as one
    // huge buffer and as an ever-growing one.
    let mut huge = b"GET /x HTTP/1.1\r\nx-pad: ".to_vec();
    huge.extend(std::iter::repeat_n(b'a', 2 * MAX_HEAD_BYTES));
    let err = try_parse(&huge).expect_err("oversized head must reject");
    assert_eq!(err.status, 431);
    let err = try_parse(&huge[..MAX_HEAD_BYTES]).expect_err("at the cap it already rejects");
    assert_eq!(err.status, 431);
}
