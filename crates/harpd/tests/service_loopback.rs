//! Full-stack loopback test: boot the daemon on an OS-assigned port, run
//! the tenant lifecycle over real sockets, validate `/metrics` as
//! Prometheus exposition, and drain it cleanly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use harpd::client::HttpClient;
use harpd::server::{Server, ServerConfig, ServerSummary};

const SCN: &str = "scenario loopback\nseed 7\n[topology]\ngenerator random nodes=40 layers=6 max_children=4 seed=0xBEEF count=1\n[workloads]\ndemand uniform cells=1\n";

fn create_body(tenant: &str) -> String {
    format!(
        "{{\"tenant\": \"{tenant}\", \"scenario\": \"{}\"}}",
        SCN.replace('\n', "\\n")
    )
}

fn boot(workers: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<ServerSummary>) {
    let server = Server::bind(ServerConfig::loopback(
        workers,
        "loop-token",
        "/nonexistent",
    ))
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

#[test]
fn lifecycle_metrics_and_graceful_drain() {
    let (addr, join) = boot(2);
    let mut client = HttpClient::new(addr).with_timeout(Duration::from_secs(30));

    let health = client.get("/health").expect("health");
    assert_eq!(health.status, 200);
    assert!(
        health.body.contains("\"status\": \"ok\""),
        "{}",
        health.body
    );

    let created = client
        .post("/networks", &create_body("t1"))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);
    assert!(
        created.body.contains("\"exclusive\": true"),
        "{}",
        created.body
    );

    // Unknown tenant and malformed JSON travel the full stack as 4xx.
    assert_eq!(client.get("/networks/ghost/schedule").unwrap().status, 404);
    assert_eq!(client.post("/networks", "{oops").unwrap().status, 400);

    let sched = client.get("/networks/t1/schedule").expect("schedule");
    assert_eq!(sched.status, 200);
    assert!(sched.body.contains("\"nodes\": 40"), "{}", sched.body);

    let bill = client
        .post("/networks/t1/adjust", "{\"node\": 5, \"cells\": 2}")
        .expect("adjust");
    assert_eq!(bill.status, 200, "{}", bill.body);
    assert!(bill.body.contains("\"mgmt_messages\""), "{}", bill.body);

    // /metrics must be valid Prometheus exposition with tenant labels.
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    harp_obs::prometheus::validate_exposition(&metrics.body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{}", metrics.body));
    assert!(
        metrics.body.contains("harpd_requests_total"),
        "{}",
        metrics.body
    );
    assert!(metrics.body.contains("tenant=\"t1\""), "{}", metrics.body);
    assert!(
        metrics.body.contains("harpd_request_us_bucket"),
        "{}",
        metrics.body
    );

    // A wrong shutdown token is refused and the server keeps serving.
    assert_eq!(
        client.post("/shutdown?token=wrong", "").unwrap().status,
        403
    );
    assert_eq!(client.get("/health").unwrap().status, 200);

    let down = client
        .post("/shutdown?token=loop-token", "")
        .expect("shutdown");
    assert_eq!(down.status, 200);
    let summary = join.join().expect("server thread joins cleanly");
    assert_eq!(summary.networks, 1);
    assert!(summary.metrics.counter("harpd.requests_total").unwrap() >= 8);
    assert!(summary.exposition().contains("harpd_requests_total"));
}

#[test]
fn concurrent_tenants_do_not_serialize_errors() {
    let (addr, join) = boot(4);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = HttpClient::new(addr).with_timeout(Duration::from_secs(30));
                let created = client
                    .post("/networks", &create_body(&format!("w{i}")))
                    .expect("create");
                assert_eq!(created.status, 201, "{}", created.body);
                for _ in 0..5 {
                    let resp = client
                        .get(&format!("/networks/w{i}/schedule"))
                        .expect("schedule");
                    assert_eq!(resp.status, 200);
                }
                let bill = client
                    .post(
                        &format!("/networks/w{i}/adjust"),
                        "{\"node\": 3, \"cells\": 2}",
                    )
                    .expect("adjust");
                assert_eq!(bill.status, 200, "{}", bill.body);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker client thread");
    }
    let mut client = HttpClient::new(addr);
    let listed = client.get("/networks").expect("list");
    for i in 0..4 {
        assert!(
            listed.body.contains(&format!("\"tenant\": \"w{i}\"")),
            "{}",
            listed.body
        );
    }
    assert_eq!(
        client
            .post("/shutdown?token=loop-token", "")
            .unwrap()
            .status,
        200
    );
    join.join().expect("clean join");
}

#[test]
fn raw_socket_malformed_requests_get_4xx_not_hangs() {
    let (addr, join) = boot(1);
    for raw in [
        "BROKEN\r\n\r\n",
        "GET /health HTTP/9.9\r\n\r\n",
        "GET /health HTTP/1.1\r\nno-colon-here\r\n\r\n",
    ] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(raw.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "{raw:?} -> {response:?}"
        );
        assert!(response.contains("connection: close"), "{response:?}");
    }

    // A split-read request still completes over the wire.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let raw = "GET /health HTTP/1.1\r\nconnection: close\r\n\r\n";
    let (a, b) = raw.split_at(12);
    stream.write_all(a.as_bytes()).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(30));
    stream.write_all(b.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 200"), "{response:?}");

    let mut client = HttpClient::new(addr);
    assert_eq!(
        client
            .post("/shutdown?token=loop-token", "")
            .unwrap()
            .status,
        200
    );
    join.join().expect("clean join");
}
