//! Live-observability loopback tests: boot the daemon on real sockets and
//! pin (1) that the correlation id an adjust response returns resolves via
//! `/debug/trace/<tenant>` to the allocator spans and control-plane ops
//! that request produced, and (2) that concurrent multi-tenant load wraps
//! the flight-recorder ring without corrupting its dump or starving
//! `/debug/health`.

use std::time::Duration;

use harpd::client::HttpClient;
use harpd::server::{Server, ServerConfig, ServerSummary};

const SCN: &str = "scenario loopback\nseed 7\n[topology]\ngenerator random nodes=40 layers=6 max_children=4 seed=0xBEEF count=1\n[workloads]\ndemand uniform cells=1\n";

fn create_body(tenant: &str) -> String {
    format!(
        "{{\"tenant\": \"{tenant}\", \"scenario\": \"{}\"}}",
        SCN.replace('\n', "\\n")
    )
}

fn boot(workers: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<ServerSummary>) {
    let server = Server::bind(ServerConfig::loopback(
        workers,
        "loop-token",
        "/nonexistent",
    ))
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn correlation_of(body: &str) -> u64 {
    body.split("\"correlation_id\": ")
        .nth(1)
        .expect("correlation id in body")
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn adjust_correlation_resolves_over_the_wire() {
    let (addr, join) = boot(2);
    let mut client = HttpClient::new(addr).with_timeout(Duration::from_secs(30));

    let created = client
        .post("/networks", &create_body("t1"))
        .expect("create");
    assert_eq!(created.status, 201, "{}", created.body);
    let create_corr = correlation_of(&created.body);

    let bill = client
        .post("/networks/t1/adjust", "{\"node\": 5, \"cells\": 2}")
        .expect("adjust");
    assert_eq!(bill.status, 200, "{}", bill.body);
    let corr = correlation_of(&bill.body);
    assert!(
        corr > create_corr,
        "ids are monotonic: {create_corr} {corr}"
    );

    // The id resolves through the tenant trace to both the daemon-side
    // request spans and the allocator/control-plane spans it caused.
    let trace = client.get("/debug/trace/t1").expect("trace");
    assert_eq!(trace.status, 200);
    let needle = format!("\"corr\": {corr}");
    let (request_part, allocator_part) = trace
        .body
        .split_once("\"allocator_trace\"")
        .expect("trace has request and allocator sections");
    assert!(
        request_part.contains(&needle),
        "request spans lost the id: {}",
        trace.body
    );
    assert!(
        allocator_part.contains(&needle),
        "allocator trace lost the id: {}",
        trace.body
    );
    assert!(allocator_part.contains("mgmt_op"), "{}", trace.body);

    // The flight recorder tagged the adjust with the same id.
    let flight = client.get("/debug/flight").expect("flight");
    assert_eq!(flight.status, 200);
    let doc = harp_obs::FlightDoc::parse_str(&flight.body).expect("dump parses");
    assert!(
        doc.events
            .iter()
            .any(|e| e.kind == "adjust" && e.corr == corr && e.tenant == "t1"),
        "{}",
        flight.body
    );

    // No incident yet: nothing tripped.
    assert_eq!(client.get("/debug/flight?incident").unwrap().status, 404);

    let health = client.get("/debug/health").expect("health");
    assert_eq!(health.status, 200);
    assert!(
        health.body.contains("\"tenant\": \"t1\""),
        "{}",
        health.body
    );

    assert_eq!(
        client
            .post("/shutdown?token=loop-token", "")
            .unwrap()
            .status,
        200
    );
    join.join().expect("clean join");
}

#[test]
fn concurrent_load_wraps_flight_ring_and_stays_consistent() {
    let (addr, join) = boot(4);
    // Every request logs one flight event; 4 tenants x ~300 requests
    // comfortably exceeds the 1024-event ring and forces wraparound
    // while four workers interleave recordings.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = HttpClient::new(addr).with_timeout(Duration::from_secs(30));
                let created = client
                    .post("/networks", &create_body(&format!("w{i}")))
                    .expect("create");
                assert_eq!(created.status, 201, "{}", created.body);
                for _ in 0..300 {
                    let resp = client
                        .get(&format!("/networks/w{i}/schedule"))
                        .expect("schedule");
                    assert_eq!(resp.status, 200);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("tenant thread");
    }

    let mut client = HttpClient::new(addr).with_timeout(Duration::from_secs(30));
    let flight = client.get("/debug/flight").expect("flight");
    let doc = harp_obs::FlightDoc::parse_str(&flight.body).expect("dump parses");
    assert!(
        doc.total_recorded > 1024,
        "expected wraparound, recorded {}",
        doc.total_recorded
    );
    assert!(doc.dropped > 0, "ring never wrapped: {}", flight.body);
    assert!(
        doc.events.len() <= 512,
        "dump over limit: {}",
        doc.events.len()
    );
    // Sequence numbers stay strictly increasing across the wrap even with
    // four workers racing the recorder.
    for pair in doc.events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq disorder: {:?}", pair);
    }
    // Per-tenant tagging survived interleaving.
    for i in 0..4 {
        let tenant = format!("w{i}");
        assert!(
            doc.events.iter().any(|e| e.tenant == tenant),
            "tenant {tenant} absent from dump"
        );
    }

    // Health reports all four tenants live with their query counts.
    let health = client.get("/debug/health").expect("health");
    for i in 0..4 {
        assert!(
            health.body.contains(&format!("\"tenant\": \"w{i}\"")),
            "{}",
            health.body
        );
    }
    assert!(
        health.body.contains("\"schedule_queries\": 300"),
        "{}",
        health.body
    );

    // The dropped-event gauge surfaced in /metrics.
    let metrics = client.get("/metrics").expect("metrics");
    harp_obs::prometheus::validate_exposition(&metrics.body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{}", metrics.body));
    assert!(
        metrics.body.contains("harpd_flight_events_dropped"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("harpd_route_schedule_us_bucket"),
        "{}",
        metrics.body
    );

    assert_eq!(
        client
            .post("/shutdown?token=loop-token", "")
            .unwrap()
            .status,
        200
    );
    join.join().expect("clean join");
}
