//! A minimal blocking HTTP/1.1 client for the daemon's own tests and
//! load generator: keep-alive, `content-length` framing only, one
//! reconnect on a broken connection.
//!
//! This is deliberately not a general HTTP client — it speaks exactly
//! the dialect [`crate::http`] serves (no chunking, no redirects, no
//! TLS), which keeps the round trip dependency-free.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A keep-alive connection to one daemon.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
}

/// One response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body decoded as UTF-8 (lossy).
    pub body: String,
}

impl ClientResponse {
    /// Whether the status is 2xx.
    #[must_use]
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

impl HttpClient {
    /// A client for `addr`; connects lazily on the first request.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(30),
            stream: None,
        }
    }

    /// Overrides the per-request socket timeout (default 30 s).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&self) -> Result<TcpStream, String> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| format!("socket options: {e}"))?;
        Ok(stream)
    }

    /// GET `path`.
    ///
    /// # Errors
    ///
    /// A message when the transport fails (after one reconnect attempt)
    /// or the response does not parse.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, String> {
        self.request("GET", path, None)
    }

    /// POST `body` (as JSON) to `path`.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::get`].
    pub fn post(&mut self, path: &str, body: &str) -> Result<ClientResponse, String> {
        self.request("POST", path, Some(body))
    }

    /// DELETE `path`.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::get`].
    pub fn delete(&mut self, path: &str) -> Result<ClientResponse, String> {
        self.request("DELETE", path, None)
    }

    /// Issues one request, reusing the pooled connection when possible and
    /// reconnecting once if the pooled connection has gone away.
    ///
    /// # Errors
    ///
    /// A message when the transport fails or the response does not parse.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, String> {
        let pooled = self.stream.is_some();
        match self.try_request(method, path, body) {
            Ok(resp) => Ok(resp),
            Err(_) if pooled => {
                // The pooled connection died (server closed it between
                // requests); retry exactly once on a fresh one.
                self.stream = None;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, String> {
        if self.stream.is_none() {
            self.stream = Some(self.connect()?);
        }
        let stream = self.stream.as_mut().expect("stream just ensured");
        let body = body.unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: harpd\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let write = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .and_then(|()| stream.flush());
        if let Err(e) = write {
            self.stream = None;
            return Err(format!("write: {e}"));
        }
        match read_response(stream) {
            Ok((resp, close)) => {
                if close {
                    self.stream = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Reads one `content-length`-framed response; returns it plus whether
/// the server asked to close the connection.
fn read_response(stream: &mut TcpStream) -> Result<(ClientResponse, bool), String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("server closed before response head".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "non-UTF-8 head".to_owned())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.to_ascii_lowercase();
        if name == "content-length" {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| "bad content-length".to_owned())?;
        } else if name == "connection" && value.trim().eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("server closed mid-body".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
    Ok((ClientResponse { status, body }, close))
}
