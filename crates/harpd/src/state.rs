//! Daemon state: the tenant map, daemon-level metrics, and the router
//! that turns parsed [`Request`]s into [`Response`]s.
//!
//! Locking is two-level so tenants never block each other: the outer
//! `RwLock` guards only the *map* (create/delete/list take the write
//! lock briefly; everything else a read lock), and each tenant sits
//! behind its own `Mutex`, held for the duration of one allocator
//! operation. A slow convergence in tenant A never delays a schedule
//! query on tenant B.
//!
//! Reads are split from writes *within* a tenant too. Every
//! [`TenantSlot`] mirrors the allocator's version stamp
//! ([`AllocatorHandle::version`]) into an atomic and caches the rendered
//! `GET /schedule` body keyed by that stamp, so a steady-state schedule
//! query is answered without touching the tenant mutex at all (and skips
//! the per-tenant span, since no allocator work happened). `/metrics`
//! scrapes render per-tenant series through `try_lock`, replaying the
//! last snapshot when an in-flight adjustment holds the lock — a scrape
//! never queues behind the allocator. Response bodies are assembled with
//! [`JsonBuf`] into buffers pooled on [`AppState`] and recycled by the
//! connection loop after each write.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, TryLockError};
use std::time::Instant;

use harp_core::{AllocatorHandle, Requirements, SchedulingPolicy};
use harp_obs::json::{parse, Json, JsonBuf};
use harp_obs::prometheus::{render_exposition, Labels};
use harp_obs::{
    merged_trace_json, FlightEvent, FlightRecorder, MetricsRegistry, MetricsSnapshot, SpanEvent,
    SpanRing, NO_FLIGHT_NODE, NO_NODE,
};
use tsch_sim::{Link, NodeId};
use workloads::scenario_dsl::parse_scenario;

use crate::http::{HttpError, Request, Response};

/// Microsecond bucket bounds for the request-latency histogram:
/// powers of two from 1 µs to ~67 s, wide enough that a large-network
/// convergence never lands in the overflow bucket.
pub const REQUEST_US_BOUNDS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131_072,
    262_144, 524_288, 1_048_576, 2_097_152, 4_194_304, 8_388_608, 16_777_216, 33_554_432,
    67_108_864,
];

/// Default per-request latency SLO: a request slower than this trips the
/// flight recorder into freezing an incident snapshot.
pub const DEFAULT_SLO_US: u64 = 2_000_000;

/// Span capacity of the daemon's request-span ring (parse/route/allocator/
/// encode spans, four to five per request).
const DAEMON_SPAN_CAPACITY: usize = 4096;
/// Span capacity of each tenant's request-span ring.
const TENANT_SPAN_CAPACITY: usize = 1024;
/// Span capacity handed to each tenant's observed allocator.
const ALLOCATOR_SPAN_CAPACITY: usize = 2048;
/// Event capacity of the always-on flight recorder.
const FLIGHT_CAPACITY: usize = 1024;
/// Most recent events returned by `/debug/flight`.
const FLIGHT_DUMP_LIMIT: usize = 512;
/// Most recent spans returned per ring by `/debug/trace/<tenant>`.
const TRACE_DUMP_LIMIT: usize = 512;
/// Adjustment-storm detector: this many adjustments inside
/// [`STORM_WINDOW_US`] trips the flight recorder.
const STORM_THRESHOLD: usize = 64;
const STORM_WINDOW_US: u64 = 10_000_000;

/// One hosted network: a converged allocator plus per-tenant counters.
pub struct Tenant {
    /// The long-lived allocator.
    pub handle: AllocatorHandle,
    /// The scenario name the network was created from.
    pub scenario_name: String,
    /// Request spans served against this tenant (µs-since-boot timebase),
    /// each stamped with the request's correlation id.
    pub request_spans: SpanRing,
}

impl Tenant {
    /// Spans recorded but evicted across this tenant's rings (the request
    /// ring plus the allocator's observed layers).
    fn spans_dropped(&self) -> u64 {
        let request = self.request_spans.total_recorded() - self.request_spans.len() as u64;
        let allocator: u64 = self
            .handle
            .network()
            .span_rings()
            .iter()
            .map(|r| r.total_recorded() - r.len() as u64)
            .sum();
        request + allocator
    }

    /// Per-tenant metrics as a synthetic snapshot for the `/metrics`
    /// exposition, labelled with `tenant="<id>"` by the caller. The
    /// schedule-query count lives on the [`TenantSlot`] (it advances on
    /// lock-free cache hits), so the caller passes it in.
    fn metrics(&self, schedule_queries: u64) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let summary = self.handle.summary();
        snap.counters
            .insert("harpd.tenant.adjustments".into(), self.handle.adjustments());
        snap.counters.insert(
            "harpd.tenant.mgmt_messages".into(),
            self.handle.mgmt_messages_total(),
        );
        snap.counters.insert(
            "harpd.tenant.cell_messages".into(),
            self.handle.cell_messages_total(),
        );
        snap.counters
            .insert("harpd.tenant.schedule_queries".into(), schedule_queries);
        snap.gauges
            .insert("harpd.tenant.nodes".into(), summary.nodes as f64);
        snap.gauges.insert(
            "harpd.tenant.assignments".into(),
            summary.assignments as f64,
        );
        snap.gauges.insert(
            "harpd.tenant.active_cells".into(),
            summary.active_cells as f64,
        );
        snap.gauges.insert(
            "harpd.tenant.spans_dropped".into(),
            self.spans_dropped() as f64,
        );
        snap
    }
}

/// A tenant plus its read-side caches. The mutex guards the allocator;
/// everything else is reachable without it, which is what keeps schedule
/// queries and metrics scrapes off an adjusting tenant's lock.
pub struct TenantSlot {
    /// The tenant proper, locked for the duration of one allocator op.
    tenant: Mutex<Tenant>,
    /// Mirror of [`AllocatorHandle::version`], written only while the
    /// tenant lock is held (create and adjust — a *rejected* adjustment
    /// also advances it, because the allocator clock moved). Readers
    /// compare it against a cached render's stamp without the mutex.
    version: AtomicU64,
    /// Schedule queries served (atomic so cache hits skip the lock).
    schedule_queries: AtomicU64,
    /// The rendered `GET /schedule` body, keyed by the version stamp it
    /// was rendered under.
    schedule_cache: RwLock<Option<(u64, Arc<Vec<u8>>)>>,
    /// The last rendered per-tenant metrics snapshot, replayed to a
    /// `/metrics` scrape when an adjustment holds the tenant lock.
    metrics_cache: RwLock<Option<Arc<MetricsSnapshot>>>,
}

impl TenantSlot {
    fn new(tenant: Tenant) -> Self {
        let version = tenant.handle.version();
        Self {
            tenant: Mutex::new(tenant),
            version: AtomicU64::new(version),
            schedule_queries: AtomicU64::new(0),
            schedule_cache: RwLock::new(None),
            metrics_cache: RwLock::new(None),
        }
    }

    /// The cached schedule body, when nothing has mutated the allocator
    /// since it was rendered.
    fn cached_schedule(&self) -> Option<Arc<Vec<u8>>> {
        let version = self.version.load(Ordering::Acquire);
        let cache = self.schedule_cache.read().ok()?;
        match cache.as_ref() {
            Some((v, body)) if *v == version => Some(Arc::clone(body)),
            _ => None,
        }
    }

    /// Per-tenant metrics for the `/metrics` scrape: rendered fresh when
    /// the tenant lock is free, replayed from the last render when an
    /// adjustment holds it — a scrape never queues behind the allocator.
    fn scrape_metrics(&self) -> Option<Arc<MetricsSnapshot>> {
        let queries = self.schedule_queries.load(Ordering::Relaxed);
        match self.tenant.try_lock() {
            Ok(tenant) => {
                let snap = Arc::new(tenant.metrics(queries));
                if let Ok(mut cache) = self.metrics_cache.write() {
                    *cache = Some(Arc::clone(&snap));
                }
                Some(snap)
            }
            Err(TryLockError::WouldBlock) => {
                self.metrics_cache.read().ok()?.as_ref().map(Arc::clone)
            }
            Err(TryLockError::Poisoned(_)) => None,
        }
    }

    /// Node count without queueing behind the allocator: live when the
    /// lock is free, else from the last rendered metrics snapshot.
    fn nodes_hint(&self) -> usize {
        match self.tenant.try_lock() {
            Ok(tenant) => tenant.handle.summary().nodes,
            Err(_) => self
                .metrics_cache
                .read()
                .ok()
                .and_then(|c| {
                    c.as_ref()
                        .and_then(|s| s.gauges.get("harpd.tenant.nodes").copied())
                })
                .unwrap_or(0.0) as usize,
        }
    }
}

/// The route classes the daemon meters individually: every request folds
/// into exactly one, giving per-route latency histograms (p50/p95/p99 via
/// the derived exposition gauges) without unbounded label cardinality.
pub const ROUTE_CLASSES: &[&str] = &[
    "health", "metrics", "list", "create", "schedule", "adjust", "delete", "shutdown", "debug",
    "other",
];

/// Folds a request path onto its [`ROUTE_CLASSES`] entry.
#[must_use]
pub fn route_class(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        (_, ["health"]) => "health",
        (_, ["metrics"]) => "metrics",
        ("GET", ["networks"]) => "list",
        ("POST", ["networks"]) => "create",
        (_, ["networks", _, "schedule"]) => "schedule",
        (_, ["networks", _, "adjust"]) => "adjust",
        ("DELETE", ["networks", _]) => "delete",
        (_, ["shutdown"]) => "shutdown",
        (_, ["debug", ..]) => "debug",
        _ => "other",
    }
}

/// Daemon-wide metrics: one registry with pre-registered ids, behind one
/// mutex (the registry itself is not thread-safe).
pub struct DaemonMetrics {
    registry: MetricsRegistry,
    requests_total: harp_obs::CounterId,
    http_errors: harp_obs::CounterId,
    creates: harp_obs::CounterId,
    adjustments: harp_obs::CounterId,
    schedule_queries: harp_obs::CounterId,
    request_us: harp_obs::HistogramId,
    /// Time spent inside the allocator per request (µs) — subtracting its
    /// percentiles from `request_us` is the server-overhead split the
    /// load generator reports.
    allocator_us: harp_obs::HistogramId,
    route_us: Vec<(&'static str, harp_obs::HistogramId)>,
    networks: harp_obs::GaugeId,
    aggregate_nodes: harp_obs::GaugeId,
    spans_dropped: harp_obs::GaugeId,
    flight_dropped: harp_obs::GaugeId,
    flight_trips: harp_obs::GaugeId,
}

impl DaemonMetrics {
    fn new() -> Self {
        let mut registry = MetricsRegistry::new(true);
        // One latency histogram per route class: "harpd.route.adjust_us"
        // etc., so per-route p50/p95/p99 are scrapeable directly.
        const ROUTE_US_NAMES: &[(&str, &str)] = &[
            ("health", "harpd.route.health_us"),
            ("metrics", "harpd.route.metrics_us"),
            ("list", "harpd.route.list_us"),
            ("create", "harpd.route.create_us"),
            ("schedule", "harpd.route.schedule_us"),
            ("adjust", "harpd.route.adjust_us"),
            ("delete", "harpd.route.delete_us"),
            ("shutdown", "harpd.route.shutdown_us"),
            ("debug", "harpd.route.debug_us"),
            ("other", "harpd.route.other_us"),
        ];
        let route_us = ROUTE_US_NAMES
            .iter()
            .map(|(class, name)| (*class, registry.histogram(name, REQUEST_US_BOUNDS)))
            .collect();
        Self {
            requests_total: registry.counter("harpd.requests_total"),
            http_errors: registry.counter("harpd.http_errors"),
            creates: registry.counter("harpd.networks_created"),
            adjustments: registry.counter("harpd.adjustments"),
            schedule_queries: registry.counter("harpd.schedule_queries"),
            request_us: registry.histogram("harpd.request_us", REQUEST_US_BOUNDS),
            allocator_us: registry.histogram("harpd.allocator_us", REQUEST_US_BOUNDS),
            route_us,
            networks: registry.gauge("harpd.networks"),
            aggregate_nodes: registry.gauge("harpd.aggregate_nodes"),
            spans_dropped: registry.gauge("harpd.spans_dropped"),
            flight_dropped: registry.gauge("harpd.flight_events_dropped"),
            flight_trips: registry.gauge("harpd.flight_trips"),
            registry,
        }
    }
}

/// Response-body buffers kept around for reuse.
const POOL_MAX_BUFFERS: usize = 64;
/// A buffer that grew beyond this capacity is dropped, not pooled, so a
/// single huge trace dump doesn't pin memory forever.
const POOL_MAX_BUFFER_CAPACITY: usize = 256 * 1024;

/// Shared state behind every worker thread.
pub struct AppState {
    tenants: RwLock<BTreeMap<String, Arc<TenantSlot>>>,
    metrics: Mutex<DaemonMetrics>,
    shutdown: AtomicBool,
    token: String,
    scenario_dir: PathBuf,
    /// The daemon clock epoch: every span and flight event is stamped in
    /// µs since this instant.
    start: Instant,
    /// Correlation-id source (1-based; 0 is [`harp_obs::NO_CORRELATION`]).
    correlation: AtomicU64,
    /// Daemon-level request spans (parse/route/allocator/encode).
    spans: Mutex<SpanRing>,
    /// The always-on flight recorder.
    flight: Mutex<FlightRecorder>,
    /// Connections accepted but not yet picked up by a worker.
    queue_depth: AtomicI64,
    /// Per-request latency SLO in µs; breaching it trips the recorder.
    slo_us: AtomicU64,
    /// Adjustment timestamps (µs) inside the storm window.
    storm_window: Mutex<VecDeque<u64>>,
    /// Recycled response-body buffers (see [`AppState::take_buf`]).
    pool: Mutex<Vec<Vec<u8>>>,
}

impl AppState {
    /// Fresh state with the given shutdown token and the directory named
    /// scenarios (`scenario_file` bodies) are resolved under.
    #[must_use]
    pub fn new(token: String, scenario_dir: PathBuf) -> Self {
        Self {
            tenants: RwLock::new(BTreeMap::new()),
            metrics: Mutex::new(DaemonMetrics::new()),
            shutdown: AtomicBool::new(false),
            token,
            scenario_dir,
            start: Instant::now(),
            correlation: AtomicU64::new(0),
            spans: Mutex::new(SpanRing::new(DAEMON_SPAN_CAPACITY)),
            flight: Mutex::new(FlightRecorder::new(FLIGHT_CAPACITY)),
            queue_depth: AtomicI64::new(0),
            slo_us: AtomicU64::new(DEFAULT_SLO_US),
            storm_window: Mutex::new(VecDeque::new()),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// A cleared buffer from the response pool (or a fresh one). Handlers
    /// assemble bodies into these; the connection loop hands them back
    /// through [`AppState::recycle_buf`] after the socket write, so a
    /// steady-state request allocates nothing for its body.
    #[must_use]
    pub fn take_buf(&self) -> Vec<u8> {
        self.pool
            .lock()
            .ok()
            .and_then(|mut p| p.pop())
            .unwrap_or_default()
    }

    /// Returns a response-body buffer to the pool (bounded in count and
    /// per-buffer capacity; anything over the cap is simply dropped).
    pub fn recycle_buf(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > POOL_MAX_BUFFER_CAPACITY {
            return;
        }
        buf.clear();
        if let Ok(mut pool) = self.pool.lock() {
            if pool.len() < POOL_MAX_BUFFERS {
                pool.push(buf);
            }
        }
    }

    /// Microseconds since the daemon started — the timebase of request
    /// spans and flight events.
    #[must_use]
    pub fn uptime_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Hands out the next correlation id (1-based, never 0).
    #[must_use]
    pub fn next_correlation(&self) -> u64 {
        self.correlation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Replaces the per-request latency SLO (µs). A request slower than
    /// this trips the flight recorder into freezing an incident.
    pub fn set_slo_us(&self, us: u64) {
        self.slo_us.store(us.max(1), Ordering::Relaxed);
    }

    /// A connection entered the accept queue (called by the acceptor).
    pub fn queue_enter(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker picked a connection off the queue.
    pub fn queue_leave(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections accepted but not yet picked up by a worker.
    #[must_use]
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.load(Ordering::Relaxed).max(0)
    }

    /// Records one event into the flight recorder (seq assigned there).
    fn flight_record(&self, event: FlightEvent) {
        if let Ok(mut flight) = self.flight.lock() {
            flight.record(event);
        }
    }

    /// Trips the flight recorder, tagging the frozen incident and logging
    /// the trip itself as an event.
    fn flight_trip(&self, reason: &str, at: u64, tenant: &str, corr: u64) {
        if let Ok(mut flight) = self.flight.lock() {
            flight.trip(reason);
            let trips = flight.trips() as i64;
            flight.record(FlightEvent {
                seq: 0,
                at,
                kind: "trip",
                tenant: tenant.to_owned(),
                corr,
                node: NO_FLIGHT_NODE,
                detail: reason.to_owned(),
                magnitude: trips,
            });
        }
    }

    /// Slides the storm window and trips the recorder when
    /// [`STORM_THRESHOLD`] adjustments land inside [`STORM_WINDOW_US`].
    fn note_adjustment(&self, at: u64, tenant: &str, corr: u64) {
        let tripped = match self.storm_window.lock() {
            Ok(mut window) => {
                window.push_back(at);
                while window.front().is_some_and(|&t| t + STORM_WINDOW_US < at) {
                    window.pop_front();
                }
                if window.len() >= STORM_THRESHOLD {
                    window.clear();
                    true
                } else {
                    false
                }
            }
            Err(_) => false,
        };
        if tripped {
            self.flight_trip(
                &format!(
                    "adjustment storm: {STORM_THRESHOLD} adjustments within {}s",
                    STORM_WINDOW_US / 1_000_000
                ),
                at,
                tenant,
                corr,
            );
        }
    }

    /// Whether a shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (also used by the server on accept errors).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Hosted network count.
    #[must_use]
    pub fn network_count(&self) -> usize {
        self.tenants.read().map(|t| t.len()).unwrap_or(0)
    }

    /// The final daemon metrics snapshot (flushed on shutdown).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .lock()
            .map(|m| m.registry.snapshot())
            .unwrap_or_default()
    }

    fn record_request(&self, us: u64, alloc_us: u64, class: &'static str, is_error: bool) {
        if let Ok(mut m) = self.metrics.lock() {
            let (req, err, hist, alloc) = (
                m.requests_total,
                m.http_errors,
                m.request_us,
                m.allocator_us,
            );
            m.registry.inc(req, 1);
            if is_error {
                m.registry.inc(err, 1);
            }
            m.registry.observe(hist, us);
            if alloc_us > 0 {
                m.registry.observe(alloc, alloc_us);
            }
            if let Some(&(_, id)) = m.route_us.iter().find(|(c, _)| *c == class) {
                m.registry.observe(id, us);
            }
        }
    }

    fn refresh_network_gauges(&self) {
        let (count, nodes) = {
            let tenants = match self.tenants.read() {
                Ok(t) => t,
                Err(_) => return,
            };
            let nodes: usize = tenants.values().map(|slot| slot.nodes_hint()).sum();
            (tenants.len(), nodes)
        };
        let spans_dropped = self
            .spans
            .lock()
            .map(|s| s.total_recorded() - s.len() as u64)
            .unwrap_or(0);
        let (flight_dropped, flight_trips) = self
            .flight
            .lock()
            .map(|f| (f.dropped(), f.trips()))
            .unwrap_or((0, 0));
        if let Ok(mut m) = self.metrics.lock() {
            let (g_networks, g_nodes) = (m.networks, m.aggregate_nodes);
            let (g_spans, g_fdrop, g_trips) = (m.spans_dropped, m.flight_dropped, m.flight_trips);
            m.registry.set(g_networks, count as f64);
            m.registry.set(g_nodes, nodes as f64);
            m.registry.set(g_spans, spans_dropped as f64);
            m.registry.set(g_fdrop, flight_dropped as f64);
            m.registry.set(g_trips, flight_trips as f64);
        }
    }
}

/// What a handler reports back about where the request's time went and
/// which tenant it touched — folded into the request's spans and flight
/// event by [`handle_request_timed`].
#[derive(Default)]
struct RouteTiming {
    /// Time spent inside the allocator (converge, adjust, summary), µs.
    allocator_us: u64,
    /// Time spent formatting the response body, µs.
    encode_us: u64,
    /// The tenant the request addressed, when any.
    tenant: Option<String>,
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Routes one request; this is the whole HTTP surface of the daemon.
/// Always returns a [`Response`] — failures become their status code.
pub fn handle_request(state: &AppState, req: &Request) -> Response {
    handle_request_timed(state, req, 0)
}

/// Like [`handle_request`], with the time the transport spent parsing the
/// request head and body (`parse_us`) folded into the request's spans and
/// latency observation. Every request gets a fresh correlation id; the
/// parse/route/allocator/encode spans land in the daemon span ring (layer
/// `"harpd"`, µs-since-boot timebase) stamped with that id, a `"request"`
/// event lands in the flight recorder, and a latency-SLO breach trips the
/// recorder into freezing an incident snapshot.
pub fn handle_request_timed(state: &AppState, req: &Request, parse_us: u64) -> Response {
    let corr = state.next_correlation();
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let class = route_class(&req.method, &segments);
    let t0 = state.uptime_us();
    let start = Instant::now();
    let mut timing = RouteTiming::default();
    let result = route(state, req, corr, &mut timing);
    let route_us = elapsed_us(start);
    let response = match result {
        Ok(resp) => resp,
        Err(err) => Response::from_error(&err),
    };
    let status = response.status;
    let total_us = parse_us + route_us;
    state.record_request(total_us, timing.allocator_us, class, status >= 400);

    if let Ok(mut spans) = state.spans.lock() {
        let span =
            |name: &'static str, depth: u32, start_us: u64, end_us: u64, detail: i64| SpanEvent {
                name,
                layer: "harpd",
                node: NO_NODE,
                depth,
                start_asn: start_us,
                end_asn: end_us,
                detail,
                corr,
            };
        let t_in = t0.saturating_sub(parse_us);
        let t_out = t0 + route_us;
        spans.record(span("request", 0, t_in, t_out, i64::from(status)));
        spans.record(span("parse", 1, t_in, t0, req.body.len() as i64));
        spans.record(span("route", 1, t0, t_out, i64::from(status)));
        if timing.allocator_us > 0 {
            spans.record(span(
                "allocator",
                2,
                t0,
                t0 + timing.allocator_us,
                timing.allocator_us as i64,
            ));
        }
        spans.record(span(
            "encode",
            2,
            t_out.saturating_sub(timing.encode_us.min(route_us)),
            t_out,
            response.body.len() as i64,
        ));
    }

    let tenant = timing.tenant.unwrap_or_default();
    let at = t0 + route_us;
    state.flight_record(FlightEvent {
        seq: 0,
        at,
        kind: "request",
        tenant: tenant.clone(),
        corr,
        node: NO_FLIGHT_NODE,
        detail: format!("{} {} -> {status}", req.method, req.path),
        magnitude: total_us as i64,
    });
    let slo = state.slo_us.load(Ordering::Relaxed);
    if total_us > slo {
        state.flight_trip(
            &format!("latency SLO breach: {class} took {total_us}us (slo {slo}us)"),
            at,
            &tenant,
            corr,
        );
    }
    response
}

fn route(
    state: &AppState,
    req: &Request,
    corr: u64,
    timing: &mut RouteTiming,
) -> Result<Response, HttpError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => Ok(health(state)),
        ("GET", ["metrics"]) => Ok(metrics(state)),
        ("GET", ["debug", "health"]) => Ok(debug_health(state)),
        ("GET", ["debug", "trace", id]) => debug_trace(state, id, timing),
        ("GET", ["debug", "flight"]) => debug_flight(state, req),
        ("GET", ["networks"]) => Ok(list_networks(state)),
        ("POST", ["networks"]) => create_network(state, req, corr, timing),
        ("GET", ["networks", id, "schedule"]) => schedule(state, id, corr, timing),
        ("POST", ["networks", id, "adjust"]) => adjust(state, id, req, corr, timing),
        ("DELETE", ["networks", id]) => delete_network(state, id, corr, timing),
        ("POST", ["shutdown"]) => shutdown(state, req),
        (_, ["health" | "metrics" | "networks" | "shutdown" | "debug", ..]) => {
            Err(HttpError::new(405, "method not allowed on this resource"))
        }
        _ => Err(HttpError::new(404, "no such route")),
    }
}

fn health(state: &AppState) -> Response {
    let mut b = JsonBuf::reuse(state.take_buf());
    b.raw("{\"status\": \"ok\", \"networks\": ")
        .u64(state.network_count() as u64)
        .raw(", \"shutting_down\": ")
        .bool(state.is_shutting_down())
        .raw("}\n");
    Response::json_bytes(200, b.into_bytes())
}

fn metrics(state: &AppState) -> Response {
    state.refresh_network_gauges();
    let mut groups: Vec<(Labels, MetricsSnapshot)> = vec![(Vec::new(), state.metrics_snapshot())];
    if let Ok(tenants) = state.tenants.read() {
        for (id, slot) in tenants.iter() {
            if let Some(snap) = slot.scrape_metrics() {
                groups.push((vec![("tenant".into(), id.clone())], (*snap).clone()));
            }
        }
    }
    Response::text(200, "text/plain; version=0.0.4", render_exposition(&groups))
}

fn list_networks(state: &AppState) -> Response {
    let mut b = JsonBuf::reuse(state.take_buf());
    b.raw("{\"networks\": [");
    if let Ok(tenants) = state.tenants.read() {
        let mut first = true;
        for (id, slot) in tenants.iter() {
            let Ok(tenant) = slot.tenant.lock() else {
                continue;
            };
            if !first {
                b.raw(", ");
            }
            first = false;
            let s = tenant.handle.summary();
            b.raw("{\"tenant\": ")
                .string(id)
                .raw(", \"scenario\": ")
                .string(&tenant.scenario_name)
                .raw(", \"nodes\": ")
                .u64(s.nodes as u64)
                .raw(", \"adjustments\": ")
                .u64(tenant.handle.adjustments())
                .raw("}");
        }
    }
    b.raw("]}\n");
    Response::json_bytes(200, b.into_bytes())
}

fn body_json(req: &Request) -> Result<Json, HttpError> {
    let text = req.body_str()?;
    parse(text).map_err(|e| HttpError::new(400, format!("invalid JSON body: {e}")))
}

fn str_field<'j>(json: &'j Json, key: &str) -> Result<&'j str, HttpError> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| HttpError::new(400, format!("missing string field \"{key}\"")))
}

fn u64_field(json: &Json, key: &str) -> Result<u64, HttpError> {
    let v = json
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| HttpError::new(400, format!("missing numeric field \"{key}\"")))?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(HttpError::new(
            400,
            format!("field \"{key}\" must be a non-negative integer"),
        ));
    }
    Ok(v as u64)
}

fn load_scenario_text(state: &AppState, json: &Json) -> Result<(String, String), HttpError> {
    if let Some(inline) = json.get("scenario").and_then(Json::as_str) {
        return Ok(("inline".to_owned(), inline.to_owned()));
    }
    let name = str_field(json, "scenario_file").map_err(|_| {
        HttpError::new(
            400,
            "body needs \"scenario\" (inline) or \"scenario_file\" (named)",
        )
    })?;
    if name.contains('/') || name.contains('\\') || name.contains("..") {
        return Err(HttpError::new(400, "scenario_file must be a bare name"));
    }
    let file = if name.ends_with(".scn") {
        name.to_owned()
    } else {
        format!("{name}.scn")
    };
    let path = state.scenario_dir.join(&file);
    let text = std::fs::read_to_string(&path)
        .map_err(|_| HttpError::new(404, format!("no checked-in scenario named \"{file}\"")))?;
    Ok((name.to_owned(), text))
}

fn create_network(
    state: &AppState,
    req: &Request,
    corr: u64,
    timing: &mut RouteTiming,
) -> Result<Response, HttpError> {
    if state.is_shutting_down() {
        return Err(HttpError::new(409, "daemon is shutting down"));
    }
    let json = body_json(req)?;
    let tenant_id = str_field(&json, "tenant")?.to_owned();
    if tenant_id.is_empty() || tenant_id.len() > 128 {
        return Err(HttpError::new(400, "tenant id must be 1..=128 characters"));
    }
    timing.tenant = Some(tenant_id.clone());
    let (source, text) = load_scenario_text(state, &json)?;
    let scenario = parse_scenario(&text)
        .map_err(|e| HttpError::new(422, format!("scenario does not parse: {e}")))?;
    let config = scenario
        .slotframe_config()
        .map_err(|e| HttpError::new(422, e))?;
    let tree = scenario
        .trees(true)
        .into_iter()
        .next()
        .ok_or_else(|| HttpError::new(422, "scenario yields no topology"))?;
    let requirements: Requirements = scenario.requirements(&tree);
    // Converge observed so /debug/trace/<tenant> can resolve request ids
    // to allocator and control-plane spans from the first message on.
    let alloc_start = Instant::now();
    let handle = AllocatorHandle::converge_observed(
        tree,
        config,
        &requirements,
        SchedulingPolicy::RateMonotonic,
        ALLOCATOR_SPAN_CAPACITY,
    )
    .map_err(|e| HttpError::new(422, format!("scenario demand is infeasible: {e}")))?;
    timing.allocator_us = elapsed_us(alloc_start);

    let scenario_name = if source == "inline" {
        scenario.name.clone()
    } else {
        source
    };
    let summary = handle.summary();
    let static_report = handle.static_report();
    let enc_start = Instant::now();
    let mut b = JsonBuf::reuse(state.take_buf());
    b.raw("{\"tenant\": ")
        .string(&tenant_id)
        .raw(", \"scenario\": ")
        .string(&scenario_name)
        .raw(", \"nodes\": ")
        .u64(summary.nodes as u64)
        .raw(", \"assignments\": ")
        .u64(summary.assignments as u64)
        .raw(", \"active_cells\": ")
        .u64(summary.active_cells as u64)
        .raw(", \"exclusive\": ")
        .bool(summary.exclusive)
        .raw(", \"static_mgmt_messages\": ")
        .u64(static_report.mgmt_messages)
        .raw(", \"correlation_id\": ")
        .u64(corr)
        .raw("}\n");
    let body = b.into_bytes();
    timing.encode_us = elapsed_us(enc_start);
    state.flight_record(FlightEvent {
        seq: 0,
        at: state.uptime_us(),
        kind: "create",
        tenant: tenant_id.clone(),
        corr,
        node: NO_FLIGHT_NODE,
        detail: scenario_name.clone(),
        magnitude: summary.nodes as i64,
    });

    let tenant = Tenant {
        handle,
        scenario_name,
        request_spans: SpanRing::new(TENANT_SPAN_CAPACITY),
    };
    let slot = Arc::new(TenantSlot::new(tenant));
    {
        let mut tenants = state
            .tenants
            .write()
            .map_err(|_| HttpError::new(500, "tenant map poisoned"))?;
        if tenants.contains_key(&tenant_id) {
            return Err(HttpError::new(
                409,
                format!("tenant \"{tenant_id}\" already hosts a network"),
            ));
        }
        tenants.insert(tenant_id, slot);
    }
    if let Ok(mut m) = state.metrics.lock() {
        let c = m.creates;
        m.registry.inc(c, 1);
    }
    Ok(Response::json_bytes(201, body))
}

fn tenant_of(state: &AppState, id: &str) -> Result<Arc<TenantSlot>, HttpError> {
    state
        .tenants
        .read()
        .map_err(|_| HttpError::new(500, "tenant map poisoned"))?
        .get(id)
        .cloned()
        .ok_or_else(|| HttpError::new(404, format!("no network for tenant \"{id}\"")))
}

/// Records one request span into a tenant's ring (µs timebase, layer
/// `"harpd"`), stamped with the request's correlation id.
fn record_tenant_span(
    tenant: &mut Tenant,
    name: &'static str,
    node: u32,
    start_us: u64,
    end_us: u64,
    detail: i64,
    corr: u64,
) {
    tenant.request_spans.record(SpanEvent {
        name,
        layer: "harpd",
        node,
        depth: 0,
        start_asn: start_us,
        end_asn: end_us,
        detail,
        corr,
    });
}

fn schedule(
    state: &AppState,
    id: &str,
    corr: u64,
    timing: &mut RouteTiming,
) -> Result<Response, HttpError> {
    timing.tenant = Some(id.to_owned());
    let slot = tenant_of(state, id)?;
    slot.schedule_queries.fetch_add(1, Ordering::Relaxed);
    if let Ok(mut m) = state.metrics.lock() {
        let c = m.schedule_queries;
        m.registry.inc(c, 1);
    }
    // Fast path: nothing has mutated the allocator since the cached body
    // was rendered — answer without touching the tenant mutex (and
    // without a per-tenant span: no allocator work happened).
    if let Some(body) = slot.cached_schedule() {
        let enc_start = Instant::now();
        let mut out = state.take_buf();
        out.extend_from_slice(&body);
        timing.encode_us = elapsed_us(enc_start);
        return Ok(Response::json_bytes(200, out));
    }
    // Slow path: render under the lock and refill the cache. The version
    // stamp is read while the lock is held, so the cache entry can never
    // claim a newer state than the one it was rendered from.
    let mut tenant = slot
        .tenant
        .lock()
        .map_err(|_| HttpError::new(500, "tenant poisoned"))?;
    let alloc_start = Instant::now();
    let started_us = state.uptime_us();
    let s = tenant.handle.summary();
    let version = tenant.handle.version();
    timing.allocator_us = elapsed_us(alloc_start);
    record_tenant_span(
        &mut tenant,
        "schedule",
        NO_NODE,
        started_us,
        state.uptime_us(),
        s.assignments as i64,
        corr,
    );
    drop(tenant);
    let enc_start = Instant::now();
    let mut b = JsonBuf::reuse(state.take_buf());
    b.raw("{\"tenant\": ")
        .string(id)
        .raw(", \"nodes\": ")
        .u64(s.nodes as u64)
        .raw(", \"scheduled_links\": ")
        .u64(s.scheduled_links as u64)
        .raw(", \"assignments\": ")
        .u64(s.assignments as u64)
        .raw(", \"active_cells\": ")
        .u64(s.active_cells as u64)
        .raw(", \"slots\": ")
        .u64(u64::from(s.slots))
        .raw(", \"channels\": ")
        .u64(u64::from(s.channels))
        .raw(", \"exclusive\": ")
        .bool(s.exclusive)
        .raw(", \"asn\": ")
        .u64(s.asn)
        .raw("}\n");
    let body = b.into_bytes();
    if let Ok(mut cache) = slot.schedule_cache.write() {
        *cache = Some((version, Arc::new(body.clone())));
    }
    timing.encode_us = elapsed_us(enc_start);
    Ok(Response::json_bytes(200, body))
}

fn adjust(
    state: &AppState,
    id: &str,
    req: &Request,
    corr: u64,
    timing: &mut RouteTiming,
) -> Result<Response, HttpError> {
    timing.tenant = Some(id.to_owned());
    let json = body_json(req)?;
    let node = u64_field(&json, "node")?;
    let cells = u64_field(&json, "cells")?;
    let node = u32::try_from(node).map_err(|_| HttpError::new(400, "node out of range"))?;
    let cells = u32::try_from(cells).map_err(|_| HttpError::new(400, "cells out of range"))?;
    let down = matches!(json.get("direction").and_then(Json::as_str), Some("down"));

    let slot = tenant_of(state, id)?;
    let mut tenant = slot
        .tenant
        .lock()
        .map_err(|_| HttpError::new(500, "tenant poisoned"))?;
    if !tenant.handle.is_adjustable_node(NodeId(node)) {
        return Err(HttpError::new(
            422,
            format!("node {node} is not an adjustable (non-gateway) node of this network"),
        ));
    }
    let link = if down {
        Link::down(NodeId(node))
    } else {
        Link::up(NodeId(node))
    };
    // The correlated adjustment stamps the allocator's "adjust" span and
    // every mgmt/cell op span with this request's id — the thread that
    // lets /debug/trace/<tenant> resolve the id the client got back.
    let alloc_start = Instant::now();
    let started_us = state.uptime_us();
    let result = tenant.handle.adjust_correlated(link, cells, corr);
    timing.allocator_us = elapsed_us(alloc_start);
    // Publish the new stamp while the lock is still held: even a rejected
    // adjustment advances the allocator clock, so any cached schedule
    // body is stale either way.
    slot.version
        .store(tenant.handle.version(), Ordering::Release);
    let bill = result.map_err(|e| {
        HttpError::new(
            409,
            format!("adjustment infeasible, schedule rolled back: {e}"),
        )
    })?;
    record_tenant_span(
        &mut tenant,
        "adjust",
        node,
        started_us,
        state.uptime_us(),
        bill.mgmt_messages as i64,
        corr,
    );
    drop(tenant);
    if let Ok(mut m) = state.metrics.lock() {
        let c = m.adjustments;
        m.registry.inc(c, 1);
    }
    let at = state.uptime_us();
    state.flight_record(FlightEvent {
        seq: 0,
        at,
        kind: "adjust",
        tenant: id.to_owned(),
        corr,
        node: i64::from(node),
        detail: format!("cells={cells}"),
        magnitude: bill.mgmt_messages as i64,
    });
    state.note_adjustment(at, id, corr);
    let enc_start = Instant::now();
    let mut b = JsonBuf::reuse(state.take_buf());
    b.raw("{\"tenant\": ")
        .string(id)
        .raw(", \"node\": ")
        .u64(u64::from(node))
        .raw(", \"cells\": ")
        .u64(u64::from(cells))
        .raw(", \"mgmt_messages\": ")
        .u64(bill.mgmt_messages)
        .raw(", \"cell_messages\": ")
        .u64(bill.cell_messages)
        .raw(", \"involved_nodes\": ")
        .u64(bill.involved_nodes as u64)
        .raw(", \"layers_touched\": ")
        .u64(bill.layers_touched as u64)
        .raw(", \"slotframes\": ")
        .u64(bill.slotframes)
        .raw(", \"seconds\": ")
        .fixed(bill.seconds, 6)
        .raw(", \"correlation_id\": ")
        .u64(corr)
        .raw("}\n");
    let resp = Response::json_bytes(200, b.into_bytes());
    timing.encode_us = elapsed_us(enc_start);
    Ok(resp)
}

fn delete_network(
    state: &AppState,
    id: &str,
    corr: u64,
    timing: &mut RouteTiming,
) -> Result<Response, HttpError> {
    timing.tenant = Some(id.to_owned());
    let removed = state
        .tenants
        .write()
        .map_err(|_| HttpError::new(500, "tenant map poisoned"))?
        .remove(id)
        .is_some();
    if !removed {
        return Err(HttpError::new(
            404,
            format!("no network for tenant \"{id}\""),
        ));
    }
    state.flight_record(FlightEvent {
        seq: 0,
        at: state.uptime_us(),
        kind: "delete",
        tenant: id.to_owned(),
        corr,
        node: NO_FLIGHT_NODE,
        detail: String::new(),
        magnitude: 0,
    });
    let mut b = JsonBuf::reuse(state.take_buf());
    b.raw("{\"tenant\": ")
        .string(id)
        .raw(", \"deleted\": true}\n");
    Ok(Response::json_bytes(200, b.into_bytes()))
}

/// `GET /debug/health`: per-tenant liveness and queue depths — everything
/// an operator polls first when the service misbehaves.
fn debug_health(state: &AppState) -> Response {
    let (spans_recorded, spans_dropped) = state
        .spans
        .lock()
        .map(|s| (s.total_recorded(), s.total_recorded() - s.len() as u64))
        .unwrap_or((0, 0));
    let (flight_recorded, flight_dropped, flight_trips) = state
        .flight
        .lock()
        .map(|f| (f.total_recorded(), f.dropped(), f.trips()))
        .unwrap_or((0, 0, 0));
    let mut b = JsonBuf::reuse(state.take_buf());
    b.raw("{\"status\": \"")
        .raw(if state.is_shutting_down() {
            "draining"
        } else {
            "ok"
        })
        .raw("\", \"uptime_us\": ")
        .u64(state.uptime_us())
        .raw(", \"queue_depth\": ")
        .i64(state.queue_depth())
        .raw(", \"spans\": {\"recorded\": ")
        .u64(spans_recorded)
        .raw(", \"dropped\": ")
        .u64(spans_dropped)
        .raw("}, \"flight\": {\"recorded\": ")
        .u64(flight_recorded)
        .raw(", \"dropped\": ")
        .u64(flight_dropped)
        .raw(", \"trips\": ")
        .u64(flight_trips)
        .raw("}, \"tenants\": [");
    if let Ok(tenants) = state.tenants.read() {
        let mut first = true;
        for (id, slot) in tenants.iter() {
            if !first {
                b.raw(", ");
            }
            first = false;
            // try_lock as a liveness probe: a held lock means the tenant
            // is mid-operation (busy), not dead — report it rather than
            // queueing behind it.
            match slot.tenant.try_lock() {
                Ok(tenant) => {
                    let s = tenant.handle.summary();
                    b.raw("{\"tenant\": ")
                        .string(id)
                        .raw(", \"busy\": false, \"nodes\": ")
                        .u64(s.nodes as u64)
                        .raw(", \"adjustments\": ")
                        .u64(tenant.handle.adjustments())
                        .raw(", \"schedule_queries\": ")
                        .u64(slot.schedule_queries.load(Ordering::Relaxed))
                        .raw(", \"spans_recorded\": ")
                        .u64(tenant.request_spans.total_recorded())
                        .raw(", \"spans_dropped\": ")
                        .u64(tenant.spans_dropped())
                        .raw("}");
                }
                Err(_) => {
                    b.raw("{\"tenant\": ").string(id).raw(", \"busy\": true}");
                }
            }
        }
    }
    b.raw("]}\n");
    Response::json_bytes(200, b.into_bytes())
}

/// `GET /debug/trace/<tenant>`: the tenant's span rings — its request
/// spans (µs-since-boot timebase) and the merged allocator + control-plane
/// trace (ASN timebase), both carrying correlation ids.
fn debug_trace(
    state: &AppState,
    id: &str,
    timing: &mut RouteTiming,
) -> Result<Response, HttpError> {
    timing.tenant = Some(id.to_owned());
    let slot = tenant_of(state, id)?;
    let tenant = slot
        .tenant
        .lock()
        .map_err(|_| HttpError::new(500, "tenant poisoned"))?;
    let request_spans = tenant.request_spans.to_json(TRACE_DUMP_LIMIT);
    let allocator = merged_trace_json(&tenant.handle.network().span_rings(), TRACE_DUMP_LIMIT);
    drop(tenant);
    let mut b = JsonBuf::reuse(state.take_buf());
    b.raw("{\"tenant\": ")
        .string(id)
        .raw(", \"request_timebase\": \"us_since_boot\", \"allocator_timebase\": \"asn\", \"request_spans\": ")
        .raw(&request_spans)
        .raw(", \"allocator_trace\": ")
        .raw(&allocator)
        .raw("}\n");
    Ok(Response::json_bytes(200, b.into_bytes()))
}

/// `GET /debug/flight[?incident]`: the live flight-recorder ring, or the
/// incident snapshot frozen by the first SLO/storm trip.
fn debug_flight(state: &AppState, req: &Request) -> Result<Response, HttpError> {
    let want_incident = req.query.iter().any(|(k, _)| k == "incident");
    let flight = state
        .flight
        .lock()
        .map_err(|_| HttpError::new(500, "flight recorder poisoned"))?;
    if want_incident {
        let Some(incident) = flight.incident_json() else {
            return Err(HttpError::new(404, "nothing has tripped the recorder"));
        };
        return Ok(Response::json(200, format!("{incident}\n")));
    }
    Ok(Response::json(
        200,
        format!("{}\n", flight.to_json(FLIGHT_DUMP_LIMIT)),
    ))
}

fn shutdown(state: &AppState, req: &Request) -> Result<Response, HttpError> {
    let presented = req
        .query_value("token")
        .or_else(|| req.header("x-harpd-token"))
        .unwrap_or_default();
    if presented != state.token {
        return Err(HttpError::new(403, "shutdown token mismatch"));
    }
    state.request_shutdown();
    Ok(Response::json(
        200,
        "{\"shutting_down\": true}\n".to_owned(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY_SCN: &str =
        "scenario tiny\nseed 1\n[topology]\ngenerator fig1\n[workloads]\ndemand uniform cells=1\n";

    fn state() -> AppState {
        AppState::new("secret".into(), PathBuf::from("/nonexistent"))
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn create_tiny(state: &AppState, tenant: &str) -> Response {
        let body = format!(
            "{{\"tenant\": \"{tenant}\", \"scenario\": \"{}\"}}",
            TINY_SCN.replace('\n', "\\n")
        );
        handle_request(state, &post("/networks", &body))
    }

    #[test]
    fn create_query_adjust_delete_round_trip() {
        let state = state();
        let resp = create_tiny(&state, "t1");
        assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));

        let resp = handle_request(&state, &get("/networks/t1/schedule"));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"exclusive\": true"), "{text}");

        let resp = handle_request(
            &state,
            &post("/networks/t1/adjust", "{\"node\": 9, \"cells\": 2}"),
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"mgmt_messages\""), "{text}");

        let mut req = get("/networks/t1");
        req.method = "DELETE".into();
        assert_eq!(handle_request(&state, &req).status, 200);
        assert_eq!(
            handle_request(&state, &get("/networks/t1/schedule")).status,
            404
        );
    }

    #[test]
    fn duplicate_tenant_is_conflict() {
        let state = state();
        assert_eq!(create_tiny(&state, "dup").status, 201);
        assert_eq!(create_tiny(&state, "dup").status, 409);
    }

    #[test]
    fn malformed_and_missing_routes() {
        let state = state();
        assert_eq!(
            handle_request(&state, &post("/networks", "{nope")).status,
            400
        );
        assert_eq!(
            handle_request(&state, &post("/networks", "{\"tenant\": \"x\"}")).status,
            400
        );
        assert_eq!(handle_request(&state, &get("/nope")).status, 404);
        assert_eq!(handle_request(&state, &post("/health", "")).status, 405);
        assert_eq!(
            handle_request(
                &state,
                &post("/networks/ghost/adjust", "{\"node\": 1, \"cells\": 1}")
            )
            .status,
            404
        );
    }

    #[test]
    fn scenario_file_names_are_sandboxed() {
        let state = state();
        let resp = handle_request(
            &state,
            &post(
                "/networks",
                "{\"tenant\": \"t\", \"scenario_file\": \"../../etc/passwd\"}",
            ),
        );
        assert_eq!(resp.status, 400);
        let resp = handle_request(
            &state,
            &post(
                "/networks",
                "{\"tenant\": \"t\", \"scenario_file\": \"ghost\"}",
            ),
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn shutdown_requires_token() {
        let state = state();
        let mut req = post("/shutdown", "");
        assert_eq!(handle_request(&state, &req).status, 403);
        assert!(!state.is_shutting_down());
        req.query = vec![("token".into(), "secret".into())];
        assert_eq!(handle_request(&state, &req).status, 200);
        assert!(state.is_shutting_down());
        // Creates are refused while draining.
        assert_eq!(create_tiny(&state, "late").status, 409);
    }

    #[test]
    fn metrics_exposition_is_valid_and_labelled() {
        let state = state();
        assert_eq!(create_tiny(&state, "t1").status, 201);
        handle_request(&state, &get("/networks/t1/schedule"));
        let resp = handle_request(&state, &get("/metrics"));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        harp_obs::prometheus::validate_exposition(&text).expect("valid exposition");
        assert!(text.contains("harpd_requests_total"), "{text}");
        assert!(text.contains("tenant=\"t1\""), "{text}");
        assert!(text.contains("harpd_request_us_p99"), "{text}");
    }

    /// Pulls `"correlation_id": N` out of a response body.
    fn correlation_of(body: &str) -> u64 {
        let tail = body
            .split("\"correlation_id\": ")
            .nth(1)
            .expect("body carries a correlation id");
        tail.split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    }

    #[test]
    fn adjust_correlation_resolves_in_debug_trace() {
        let state = state();
        assert_eq!(create_tiny(&state, "t1").status, 201);
        let resp = handle_request(
            &state,
            &post("/networks/t1/adjust", "{\"node\": 9, \"cells\": 2}"),
        );
        assert_eq!(resp.status, 200);
        let corr = correlation_of(&String::from_utf8(resp.body).unwrap());
        assert!(corr > 0);

        let resp = handle_request(&state, &get("/debug/trace/t1"));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        let needle = format!("\"corr\": {corr}");
        // The daemon-side request span, the allocator's mgmt/cell ops and
        // the control-plane transport spans must all carry the id.
        let (req_part, alloc_part) = text
            .split_once("\"allocator_trace\"")
            .expect("trace has both sections");
        assert!(
            req_part.contains(&needle),
            "request spans lost corr: {text}"
        );
        assert!(
            alloc_part.contains(&needle),
            "allocator trace lost corr: {text}"
        );
        assert!(alloc_part.contains("mgmt_op"), "{text}");
        // Spans from the earlier create keep corr 0 and thus serialise no
        // corr field at all — only the adjusted request is tagged.
        assert!(alloc_part.contains("\"layer\": \"harp\""), "{text}");
    }

    #[test]
    fn debug_health_reports_tenants_and_counters() {
        let state = state();
        assert_eq!(create_tiny(&state, "t1").status, 201);
        handle_request(&state, &get("/networks/t1/schedule"));
        let resp = handle_request(&state, &get("/debug/health"));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"status\": \"ok\""), "{text}");
        assert!(text.contains("\"tenant\": \"t1\""), "{text}");
        assert!(text.contains("\"busy\": false"), "{text}");
        assert!(text.contains("\"schedule_queries\": 1"), "{text}");
        assert!(text.contains("\"queue_depth\": 0"), "{text}");
    }

    #[test]
    fn debug_flight_dumps_requests_and_404s_without_incident() {
        let state = state();
        assert_eq!(create_tiny(&state, "t1").status, 201);
        handle_request(
            &state,
            &post("/networks/t1/adjust", "{\"node\": 9, \"cells\": 1}"),
        );
        let resp = handle_request(&state, &get("/debug/flight"));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        let doc = harp_obs::FlightDoc::parse_str(&text).expect("flight dump parses");
        assert!(doc.events.iter().any(|e| e.kind == "create"), "{text}");
        assert!(doc.events.iter().any(|e| e.kind == "adjust"), "{text}");
        assert!(doc.events.iter().any(|e| e.kind == "request"), "{text}");

        let mut req = get("/debug/flight");
        req.query = vec![("incident".into(), String::new())];
        assert_eq!(handle_request(&state, &req).status, 404);
    }

    #[test]
    fn slo_breach_trips_flight_recorder() {
        let state = state();
        state.set_slo_us(0); // every request breaches a zero-latency SLO
        assert_eq!(create_tiny(&state, "t1").status, 201);
        let mut req = get("/debug/flight");
        req.query = vec![("incident".into(), String::new())];
        let resp = handle_request(&state, &req);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"reason\": \"latency SLO breach"), "{text}");
        assert!(text.contains("\"dump\""), "{text}");
    }

    #[test]
    fn debug_trace_unknown_tenant_is_404() {
        let state = state();
        assert_eq!(
            handle_request(&state, &get("/debug/trace/ghost")).status,
            404
        );
    }

    #[test]
    fn infeasible_adjustment_is_conflict_not_crash() {
        let state = state();
        assert_eq!(create_tiny(&state, "t1").status, 201);
        let resp = handle_request(
            &state,
            &post("/networks/t1/adjust", "{\"node\": 9, \"cells\": 100000}"),
        );
        assert_eq!(resp.status, 409);
        // The network still serves.
        assert_eq!(
            handle_request(&state, &get("/networks/t1/schedule")).status,
            200
        );
    }
}
