//! Daemon state: the tenant map, daemon-level metrics, and the router
//! that turns parsed [`Request`]s into [`Response`]s.
//!
//! Locking is two-level so tenants never block each other: the outer
//! `RwLock` guards only the *map* (create/delete/list take the write
//! lock briefly; everything else a read lock), and each tenant sits
//! behind its own `Mutex`, held for the duration of one allocator
//! operation. A slow convergence in tenant A never delays a schedule
//! query on tenant B.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use harp_core::{AllocatorHandle, Requirements, SchedulingPolicy};
use harp_obs::json::{parse, Json};
use harp_obs::prometheus::{render_exposition, Labels};
use harp_obs::{MetricsRegistry, MetricsSnapshot};
use tsch_sim::{Link, NodeId};
use workloads::scenario_dsl::parse_scenario;

use crate::http::{escape_json, HttpError, Request, Response};

/// Microsecond bucket bounds for the request-latency histogram:
/// powers of two from 1 µs to ~67 s, wide enough that a large-network
/// convergence never lands in the overflow bucket.
pub const REQUEST_US_BOUNDS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131_072,
    262_144, 524_288, 1_048_576, 2_097_152, 4_194_304, 8_388_608, 16_777_216, 33_554_432,
    67_108_864,
];

/// One hosted network: a converged allocator plus per-tenant counters.
pub struct Tenant {
    /// The long-lived allocator.
    pub handle: AllocatorHandle,
    /// The scenario name the network was created from.
    pub scenario_name: String,
    /// Schedule queries served for this tenant.
    pub schedule_queries: u64,
}

impl Tenant {
    /// Per-tenant metrics as a synthetic snapshot for the `/metrics`
    /// exposition, labelled with `tenant="<id>"` by the caller.
    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let summary = self.handle.summary();
        snap.counters
            .insert("harpd.tenant.adjustments".into(), self.handle.adjustments());
        snap.counters.insert(
            "harpd.tenant.mgmt_messages".into(),
            self.handle.mgmt_messages_total(),
        );
        snap.counters.insert(
            "harpd.tenant.cell_messages".into(),
            self.handle.cell_messages_total(),
        );
        snap.counters.insert(
            "harpd.tenant.schedule_queries".into(),
            self.schedule_queries,
        );
        snap.gauges
            .insert("harpd.tenant.nodes".into(), summary.nodes as f64);
        snap.gauges.insert(
            "harpd.tenant.assignments".into(),
            summary.assignments as f64,
        );
        snap.gauges.insert(
            "harpd.tenant.active_cells".into(),
            summary.active_cells as f64,
        );
        snap
    }
}

/// Daemon-wide metrics: one registry with pre-registered ids, behind one
/// mutex (the registry itself is not thread-safe).
pub struct DaemonMetrics {
    registry: MetricsRegistry,
    requests_total: harp_obs::CounterId,
    http_errors: harp_obs::CounterId,
    creates: harp_obs::CounterId,
    adjustments: harp_obs::CounterId,
    schedule_queries: harp_obs::CounterId,
    request_us: harp_obs::HistogramId,
    networks: harp_obs::GaugeId,
    aggregate_nodes: harp_obs::GaugeId,
}

impl DaemonMetrics {
    fn new() -> Self {
        let mut registry = MetricsRegistry::new(true);
        Self {
            requests_total: registry.counter("harpd.requests_total"),
            http_errors: registry.counter("harpd.http_errors"),
            creates: registry.counter("harpd.networks_created"),
            adjustments: registry.counter("harpd.adjustments"),
            schedule_queries: registry.counter("harpd.schedule_queries"),
            request_us: registry.histogram("harpd.request_us", REQUEST_US_BOUNDS),
            networks: registry.gauge("harpd.networks"),
            aggregate_nodes: registry.gauge("harpd.aggregate_nodes"),
            registry,
        }
    }
}

/// Shared state behind every worker thread.
pub struct AppState {
    tenants: RwLock<BTreeMap<String, Arc<Mutex<Tenant>>>>,
    metrics: Mutex<DaemonMetrics>,
    shutdown: AtomicBool,
    token: String,
    scenario_dir: PathBuf,
}

impl AppState {
    /// Fresh state with the given shutdown token and the directory named
    /// scenarios (`scenario_file` bodies) are resolved under.
    #[must_use]
    pub fn new(token: String, scenario_dir: PathBuf) -> Self {
        Self {
            tenants: RwLock::new(BTreeMap::new()),
            metrics: Mutex::new(DaemonMetrics::new()),
            shutdown: AtomicBool::new(false),
            token,
            scenario_dir,
        }
    }

    /// Whether a shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (also used by the server on accept errors).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Hosted network count.
    #[must_use]
    pub fn network_count(&self) -> usize {
        self.tenants.read().map(|t| t.len()).unwrap_or(0)
    }

    /// The final daemon metrics snapshot (flushed on shutdown).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .lock()
            .map(|m| m.registry.snapshot())
            .unwrap_or_default()
    }

    fn record_request(&self, us: u64, is_error: bool) {
        if let Ok(mut m) = self.metrics.lock() {
            let (req, err, hist) = (m.requests_total, m.http_errors, m.request_us);
            m.registry.inc(req, 1);
            if is_error {
                m.registry.inc(err, 1);
            }
            m.registry.observe(hist, us);
        }
    }

    fn refresh_network_gauges(&self) {
        let (count, nodes) = {
            let tenants = match self.tenants.read() {
                Ok(t) => t,
                Err(_) => return,
            };
            let nodes: usize = tenants
                .values()
                .filter_map(|t| t.lock().ok().map(|t| t.handle.summary().nodes))
                .sum();
            (tenants.len(), nodes)
        };
        if let Ok(mut m) = self.metrics.lock() {
            let (g_networks, g_nodes) = (m.networks, m.aggregate_nodes);
            m.registry.set(g_networks, count as f64);
            m.registry.set(g_nodes, nodes as f64);
        }
    }
}

/// Routes one request; this is the whole HTTP surface of the daemon.
/// Always returns a [`Response`] — failures become their status code.
pub fn handle_request(state: &AppState, req: &Request) -> Response {
    let start = Instant::now();
    let result = route(state, req);
    let response = match result {
        Ok(resp) => resp,
        Err(err) => Response::from_error(&err),
    };
    let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    state.record_request(us, response.status >= 400);
    response
}

fn route(state: &AppState, req: &Request) -> Result<Response, HttpError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => Ok(health(state)),
        ("GET", ["metrics"]) => Ok(metrics(state)),
        ("GET", ["networks"]) => Ok(list_networks(state)),
        ("POST", ["networks"]) => create_network(state, req),
        ("GET", ["networks", id, "schedule"]) => schedule(state, id),
        ("POST", ["networks", id, "adjust"]) => adjust(state, id, req),
        ("DELETE", ["networks", id]) => delete_network(state, id),
        ("POST", ["shutdown"]) => shutdown(state, req),
        (_, ["health" | "metrics" | "networks" | "shutdown", ..]) => {
            Err(HttpError::new(405, "method not allowed on this resource"))
        }
        _ => Err(HttpError::new(404, "no such route")),
    }
}

fn health(state: &AppState) -> Response {
    Response::json(
        200,
        format!(
            "{{\"status\": \"ok\", \"networks\": {}, \"shutting_down\": {}}}\n",
            state.network_count(),
            state.is_shutting_down()
        ),
    )
}

fn metrics(state: &AppState) -> Response {
    state.refresh_network_gauges();
    let mut groups: Vec<(Labels, MetricsSnapshot)> = vec![(Vec::new(), state.metrics_snapshot())];
    if let Ok(tenants) = state.tenants.read() {
        for (id, tenant) in tenants.iter() {
            if let Ok(tenant) = tenant.lock() {
                groups.push((vec![("tenant".into(), id.clone())], tenant.metrics()));
            }
        }
    }
    Response::text(200, "text/plain; version=0.0.4", render_exposition(&groups))
}

fn list_networks(state: &AppState) -> Response {
    let mut body = String::from("{\"networks\": [");
    if let Ok(tenants) = state.tenants.read() {
        let mut first = true;
        for (id, tenant) in tenants.iter() {
            let Ok(tenant) = tenant.lock() else { continue };
            if !first {
                body.push_str(", ");
            }
            first = false;
            let s = tenant.handle.summary();
            body.push_str(&format!(
                "{{\"tenant\": \"{}\", \"scenario\": \"{}\", \"nodes\": {}, \"adjustments\": {}}}",
                escape_json(id),
                escape_json(&tenant.scenario_name),
                s.nodes,
                tenant.handle.adjustments()
            ));
        }
    }
    body.push_str("]}\n");
    Response::json(200, body)
}

fn body_json(req: &Request) -> Result<Json, HttpError> {
    let text = req.body_str()?;
    parse(text).map_err(|e| HttpError::new(400, format!("invalid JSON body: {e}")))
}

fn str_field<'j>(json: &'j Json, key: &str) -> Result<&'j str, HttpError> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| HttpError::new(400, format!("missing string field \"{key}\"")))
}

fn u64_field(json: &Json, key: &str) -> Result<u64, HttpError> {
    let v = json
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| HttpError::new(400, format!("missing numeric field \"{key}\"")))?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(HttpError::new(
            400,
            format!("field \"{key}\" must be a non-negative integer"),
        ));
    }
    Ok(v as u64)
}

fn load_scenario_text(state: &AppState, json: &Json) -> Result<(String, String), HttpError> {
    if let Some(inline) = json.get("scenario").and_then(Json::as_str) {
        return Ok(("inline".to_owned(), inline.to_owned()));
    }
    let name = str_field(json, "scenario_file").map_err(|_| {
        HttpError::new(
            400,
            "body needs \"scenario\" (inline) or \"scenario_file\" (named)",
        )
    })?;
    if name.contains('/') || name.contains('\\') || name.contains("..") {
        return Err(HttpError::new(400, "scenario_file must be a bare name"));
    }
    let file = if name.ends_with(".scn") {
        name.to_owned()
    } else {
        format!("{name}.scn")
    };
    let path = state.scenario_dir.join(&file);
    let text = std::fs::read_to_string(&path)
        .map_err(|_| HttpError::new(404, format!("no checked-in scenario named \"{file}\"")))?;
    Ok((name.to_owned(), text))
}

fn create_network(state: &AppState, req: &Request) -> Result<Response, HttpError> {
    if state.is_shutting_down() {
        return Err(HttpError::new(409, "daemon is shutting down"));
    }
    let json = body_json(req)?;
    let tenant_id = str_field(&json, "tenant")?.to_owned();
    if tenant_id.is_empty() || tenant_id.len() > 128 {
        return Err(HttpError::new(400, "tenant id must be 1..=128 characters"));
    }
    let (source, text) = load_scenario_text(state, &json)?;
    let scenario = parse_scenario(&text)
        .map_err(|e| HttpError::new(422, format!("scenario does not parse: {e}")))?;
    let config = scenario
        .slotframe_config()
        .map_err(|e| HttpError::new(422, e))?;
    let tree = scenario
        .trees(true)
        .into_iter()
        .next()
        .ok_or_else(|| HttpError::new(422, "scenario yields no topology"))?;
    let requirements: Requirements = scenario.requirements(&tree);
    let handle =
        AllocatorHandle::converge(tree, config, &requirements, SchedulingPolicy::RateMonotonic)
            .map_err(|e| HttpError::new(422, format!("scenario demand is infeasible: {e}")))?;

    let scenario_name = if source == "inline" {
        scenario.name.clone()
    } else {
        source
    };
    let summary = handle.summary();
    let static_report = handle.static_report();
    let body = format!(
        "{{\"tenant\": \"{}\", \"scenario\": \"{}\", \"nodes\": {}, \"assignments\": {}, \
         \"active_cells\": {}, \"exclusive\": {}, \"static_mgmt_messages\": {}}}\n",
        escape_json(&tenant_id),
        escape_json(&scenario_name),
        summary.nodes,
        summary.assignments,
        summary.active_cells,
        summary.exclusive,
        static_report.mgmt_messages
    );

    let tenant = Tenant {
        handle,
        scenario_name,
        schedule_queries: 0,
    };
    {
        let mut tenants = state
            .tenants
            .write()
            .map_err(|_| HttpError::new(500, "tenant map poisoned"))?;
        if tenants.contains_key(&tenant_id) {
            return Err(HttpError::new(
                409,
                format!("tenant \"{tenant_id}\" already hosts a network"),
            ));
        }
        tenants.insert(tenant_id, Arc::new(Mutex::new(tenant)));
    }
    if let Ok(mut m) = state.metrics.lock() {
        let c = m.creates;
        m.registry.inc(c, 1);
    }
    Ok(Response::json(201, body))
}

fn tenant_of(state: &AppState, id: &str) -> Result<Arc<Mutex<Tenant>>, HttpError> {
    state
        .tenants
        .read()
        .map_err(|_| HttpError::new(500, "tenant map poisoned"))?
        .get(id)
        .cloned()
        .ok_or_else(|| HttpError::new(404, format!("no network for tenant \"{id}\"")))
}

fn schedule(state: &AppState, id: &str) -> Result<Response, HttpError> {
    let tenant = tenant_of(state, id)?;
    let mut tenant = tenant
        .lock()
        .map_err(|_| HttpError::new(500, "tenant poisoned"))?;
    tenant.schedule_queries += 1;
    if let Ok(mut m) = state.metrics.lock() {
        let c = m.schedule_queries;
        m.registry.inc(c, 1);
    }
    let s = tenant.handle.summary();
    Ok(Response::json(
        200,
        format!(
            "{{\"tenant\": \"{}\", \"nodes\": {}, \"scheduled_links\": {}, \"assignments\": {}, \
             \"active_cells\": {}, \"slots\": {}, \"channels\": {}, \"exclusive\": {}, \"asn\": {}}}\n",
            escape_json(id),
            s.nodes,
            s.scheduled_links,
            s.assignments,
            s.active_cells,
            s.slots,
            s.channels,
            s.exclusive,
            s.asn
        ),
    ))
}

fn adjust(state: &AppState, id: &str, req: &Request) -> Result<Response, HttpError> {
    let json = body_json(req)?;
    let node = u64_field(&json, "node")?;
    let cells = u64_field(&json, "cells")?;
    let node = u32::try_from(node).map_err(|_| HttpError::new(400, "node out of range"))?;
    let cells = u32::try_from(cells).map_err(|_| HttpError::new(400, "cells out of range"))?;
    let down = matches!(json.get("direction").and_then(Json::as_str), Some("down"));

    let tenant = tenant_of(state, id)?;
    let mut tenant = tenant
        .lock()
        .map_err(|_| HttpError::new(500, "tenant poisoned"))?;
    if !tenant.handle.is_adjustable_node(NodeId(node)) {
        return Err(HttpError::new(
            422,
            format!("node {node} is not an adjustable (non-gateway) node of this network"),
        ));
    }
    let link = if down {
        Link::down(NodeId(node))
    } else {
        Link::up(NodeId(node))
    };
    let bill = tenant.handle.adjust(link, cells).map_err(|e| {
        HttpError::new(
            409,
            format!("adjustment infeasible, schedule rolled back: {e}"),
        )
    })?;
    if let Ok(mut m) = state.metrics.lock() {
        let c = m.adjustments;
        m.registry.inc(c, 1);
    }
    Ok(Response::json(
        200,
        format!(
            "{{\"tenant\": \"{}\", \"node\": {node}, \"cells\": {cells}, \
             \"mgmt_messages\": {}, \"cell_messages\": {}, \"involved_nodes\": {}, \
             \"layers_touched\": {}, \"slotframes\": {}, \"seconds\": {:.6}}}\n",
            escape_json(id),
            bill.mgmt_messages,
            bill.cell_messages,
            bill.involved_nodes,
            bill.layers_touched,
            bill.slotframes,
            bill.seconds
        ),
    ))
}

fn delete_network(state: &AppState, id: &str) -> Result<Response, HttpError> {
    let removed = state
        .tenants
        .write()
        .map_err(|_| HttpError::new(500, "tenant map poisoned"))?
        .remove(id)
        .is_some();
    if !removed {
        return Err(HttpError::new(
            404,
            format!("no network for tenant \"{id}\""),
        ));
    }
    Ok(Response::json(
        200,
        format!(
            "{{\"tenant\": \"{}\", \"deleted\": true}}\n",
            escape_json(id)
        ),
    ))
}

fn shutdown(state: &AppState, req: &Request) -> Result<Response, HttpError> {
    let presented = req
        .query_value("token")
        .or_else(|| req.header("x-harpd-token"))
        .unwrap_or_default();
    if presented != state.token {
        return Err(HttpError::new(403, "shutdown token mismatch"));
    }
    state.request_shutdown();
    Ok(Response::json(
        200,
        "{\"shutting_down\": true}\n".to_owned(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY_SCN: &str =
        "scenario tiny\nseed 1\n[topology]\ngenerator fig1\n[workloads]\ndemand uniform cells=1\n";

    fn state() -> AppState {
        AppState::new("secret".into(), PathBuf::from("/nonexistent"))
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn create_tiny(state: &AppState, tenant: &str) -> Response {
        let body = format!(
            "{{\"tenant\": \"{tenant}\", \"scenario\": \"{}\"}}",
            TINY_SCN.replace('\n', "\\n")
        );
        handle_request(state, &post("/networks", &body))
    }

    #[test]
    fn create_query_adjust_delete_round_trip() {
        let state = state();
        let resp = create_tiny(&state, "t1");
        assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));

        let resp = handle_request(&state, &get("/networks/t1/schedule"));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"exclusive\": true"), "{text}");

        let resp = handle_request(
            &state,
            &post("/networks/t1/adjust", "{\"node\": 9, \"cells\": 2}"),
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"mgmt_messages\""), "{text}");

        let mut req = get("/networks/t1");
        req.method = "DELETE".into();
        assert_eq!(handle_request(&state, &req).status, 200);
        assert_eq!(
            handle_request(&state, &get("/networks/t1/schedule")).status,
            404
        );
    }

    #[test]
    fn duplicate_tenant_is_conflict() {
        let state = state();
        assert_eq!(create_tiny(&state, "dup").status, 201);
        assert_eq!(create_tiny(&state, "dup").status, 409);
    }

    #[test]
    fn malformed_and_missing_routes() {
        let state = state();
        assert_eq!(
            handle_request(&state, &post("/networks", "{nope")).status,
            400
        );
        assert_eq!(
            handle_request(&state, &post("/networks", "{\"tenant\": \"x\"}")).status,
            400
        );
        assert_eq!(handle_request(&state, &get("/nope")).status, 404);
        assert_eq!(handle_request(&state, &post("/health", "")).status, 405);
        assert_eq!(
            handle_request(
                &state,
                &post("/networks/ghost/adjust", "{\"node\": 1, \"cells\": 1}")
            )
            .status,
            404
        );
    }

    #[test]
    fn scenario_file_names_are_sandboxed() {
        let state = state();
        let resp = handle_request(
            &state,
            &post(
                "/networks",
                "{\"tenant\": \"t\", \"scenario_file\": \"../../etc/passwd\"}",
            ),
        );
        assert_eq!(resp.status, 400);
        let resp = handle_request(
            &state,
            &post(
                "/networks",
                "{\"tenant\": \"t\", \"scenario_file\": \"ghost\"}",
            ),
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn shutdown_requires_token() {
        let state = state();
        let mut req = post("/shutdown", "");
        assert_eq!(handle_request(&state, &req).status, 403);
        assert!(!state.is_shutting_down());
        req.query = vec![("token".into(), "secret".into())];
        assert_eq!(handle_request(&state, &req).status, 200);
        assert!(state.is_shutting_down());
        // Creates are refused while draining.
        assert_eq!(create_tiny(&state, "late").status, 409);
    }

    #[test]
    fn metrics_exposition_is_valid_and_labelled() {
        let state = state();
        assert_eq!(create_tiny(&state, "t1").status, 201);
        handle_request(&state, &get("/networks/t1/schedule"));
        let resp = handle_request(&state, &get("/metrics"));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        harp_obs::prometheus::validate_exposition(&text).expect("valid exposition");
        assert!(text.contains("harpd_requests_total"), "{text}");
        assert!(text.contains("tenant=\"t1\""), "{text}");
        assert!(text.contains("harpd_request_us_p99"), "{text}");
    }

    #[test]
    fn infeasible_adjustment_is_conflict_not_crash() {
        let state = state();
        assert_eq!(create_tiny(&state, "t1").status, 201);
        let resp = handle_request(
            &state,
            &post("/networks/t1/adjust", "{\"node\": 9, \"cells\": 100000}"),
        );
        assert_eq!(resp.status, 409);
        // The network still serves.
        assert_eq!(
            handle_request(&state, &get("/networks/t1/schedule")).status,
            200
        );
    }
}
