//! The blocking TCP server: one acceptor, a fixed worker pool, graceful
//! drain on shutdown.
//!
//! Connections flow acceptor → `mpsc` channel → workers; each worker
//! owns one connection at a time and serves keep-alive requests off it
//! until the peer closes, errors, or shutdown begins. Shutdown is
//! cooperative: the `/shutdown` handler flips the [`AppState`] flag, the
//! worker that served it wakes the acceptor with one loopback connect
//! (accept on `std::net` has no timeout), the acceptor drops the channel
//! sender, and workers finish their in-flight requests — responses
//! during the drain carry `connection: close` — before joining. The
//! final metrics snapshot survives in [`ServerSummary`].

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use harp_obs::prometheus::render_exposition;
use harp_obs::MetricsSnapshot;

use crate::http::{next_request_timed, Response};
use crate::state::{handle_request_timed, AppState};

/// How the server binds and behaves.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Shared secret the `/shutdown` endpoint requires.
    pub token: String,
    /// Directory `scenario_file` create bodies resolve under.
    pub scenario_dir: std::path::PathBuf,
    /// Per-read socket timeout; bounds how long a worker waits on a slow
    /// or silent peer.
    pub read_timeout: Duration,
    /// Per-request latency SLO in microseconds; a slower request trips
    /// the flight recorder into freezing an incident snapshot.
    pub slo_us: u64,
}

impl ServerConfig {
    /// A loopback config on an OS-assigned port (tests, load generator).
    #[must_use]
    pub fn loopback(workers: usize, token: &str, scenario_dir: &str) -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            token: token.to_owned(),
            scenario_dir: std::path::PathBuf::from(scenario_dir),
            read_timeout: Duration::from_secs(5),
            slo_us: crate::state::DEFAULT_SLO_US,
        }
    }
}

/// What the server reports after draining.
#[derive(Debug, Clone)]
pub struct ServerSummary {
    /// The daemon-level metrics at shutdown.
    pub metrics: MetricsSnapshot,
    /// Networks still hosted when the server stopped.
    pub networks: usize,
}

impl ServerSummary {
    /// The final snapshot as Prometheus exposition text (printed by the
    /// binary on exit — the "flush" of the service's last state).
    #[must_use]
    pub fn exposition(&self) -> String {
        render_exposition(&[(Vec::new(), self.metrics.clone())])
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    state: Arc<AppState>,
}

impl Server {
    /// Binds the listener and builds the shared state.
    ///
    /// # Errors
    ///
    /// The bind error (address in use, permission).
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(AppState::new(
            config.token.clone(),
            config.scenario_dir.clone(),
        ));
        state.set_slo_us(config.slo_us);
        Ok(Self {
            listener,
            config,
            state,
        })
    }

    /// The actually-bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// The socket's `local_addr` error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (tests reach the shutdown flag through this).
    #[must_use]
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Runs until a `/shutdown` request drains the server. Blocks the
    /// calling thread (which acts as the acceptor).
    pub fn run(self) -> ServerSummary {
        let local_addr = self.listener.local_addr().ok();
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let wake_sent = Arc::new(AtomicBool::new(false));

        let mut workers = Vec::with_capacity(self.config.workers.max(1));
        for i in 0..self.config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let wake_sent = Arc::clone(&wake_sent);
            let read_timeout = self.config.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("harpd-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&rx, &state, &wake_sent, local_addr, read_timeout);
                    })
                    .expect("spawn worker thread"),
            );
        }

        // Acceptor loop: hand streams to workers until shutdown.
        for stream in self.listener.incoming() {
            if self.state.is_shutting_down() {
                // The wake connection (or any straggler) lands here; drop
                // it unserved and stop accepting.
                break;
            }
            match stream {
                Ok(s) => {
                    // Depth counts connections accepted but not yet picked
                    // up by a worker — the backlog `/debug/health` reports.
                    self.state.queue_enter();
                    if tx.send(s).is_err() {
                        self.state.queue_leave();
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Listener is wedged; drain and stop rather than spin.
                    self.state.request_shutdown();
                    break;
                }
            }
        }
        drop(tx); // workers drain queued streams, then see the channel close
        for worker in workers {
            let _ = worker.join();
        }
        ServerSummary {
            metrics: self.state.metrics_snapshot(),
            networks: self.state.network_count(),
        }
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    state: &Arc<AppState>,
    wake_sent: &Arc<AtomicBool>,
    local_addr: Option<std::net::SocketAddr>,
    read_timeout: Duration,
) {
    loop {
        // Hold the receiver lock only while taking one stream.
        let stream = {
            let Ok(guard) = rx.lock() else { return };
            guard.recv()
        };
        let Ok(stream) = stream else { return };
        state.queue_leave();
        serve_connection(stream, state, read_timeout);
        if state.is_shutting_down() && !wake_sent.swap(true, Ordering::SeqCst) {
            // First worker to observe shutdown unblocks the acceptor.
            if let Some(addr) = local_addr {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream, state: &Arc<AppState>, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(4 * 1024);
    loop {
        match next_request_timed(&mut stream, &mut buf) {
            Ok(Some((req, parse_us))) => {
                let mut resp = handle_request_timed(state, &req, parse_us);
                let draining = state.is_shutting_down();
                if !req.keep_alive || draining {
                    resp.close = true;
                }
                let wrote = resp.write_to(&mut stream).is_ok();
                // The body buffer came from the state's pool (handlers
                // assemble into `take_buf` buffers); hand it back so the
                // next response reuses the allocation.
                state.recycle_buf(std::mem::take(&mut resp.body));
                if !wrote || resp.close {
                    return;
                }
            }
            Ok(None) => return, // clean close or idle timeout
            Err(err) => {
                // Best-effort error response; framing is gone, so close.
                let _ = Response::from_error(&err).write_to(&mut stream);
                return;
            }
        }
    }
}
