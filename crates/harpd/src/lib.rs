//! `harpd`: the HARP allocator as a long-running, multi-tenant service.
//!
//! Every other binary in this workspace runs one experiment and exits.
//! This crate keeps allocators *alive*: a hand-rolled, zero-dependency
//! HTTP/1.1 server over [`std::net::TcpListener`] hosting many
//! independent HARP networks keyed by tenant id, each a
//! [`harp_core::AllocatorHandle`] that converged once and then absorbs
//! adjustments request by request — the deployment model the paper's
//! gateway occupies (one allocator per industrial cell, §VI).
//!
//! The HTTP surface:
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /health` | liveness + hosted-network count |
//! | `GET /metrics` | Prometheus text: daemon series + per-tenant series labelled `tenant="id"` |
//! | `GET /networks` | list hosted networks |
//! | `POST /networks` | create from an inline scenario body or a checked-in `scenario_file` name |
//! | `GET /networks/{id}/schedule` | converged-schedule summary |
//! | `POST /networks/{id}/adjust` | raise/lower one link's cells; returns the control-message bill |
//! | `DELETE /networks/{id}` | drop a network |
//! | `POST /shutdown?token=…` | token-guarded graceful drain |
//!
//! Module layout mirrors the request path: [`http`] parses bytes into
//! requests (strict, incremental, hard limits), [`state`] routes them
//! against the tenant map, [`server`] owns the acceptor/worker threads
//! and the graceful drain, [`client`] is the matching minimal client the
//! load generator and tests speak through.
//!
//! # Examples
//!
//! Boot a loopback daemon, create a network, adjust it, shut down:
//!
//! ```
//! use harpd::client::HttpClient;
//! use harpd::server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::loopback(2, "tok", "scenarios")).unwrap();
//! let addr = server.local_addr().unwrap();
//! let join = std::thread::spawn(move || server.run());
//!
//! let mut client = HttpClient::new(addr);
//! let scn = "scenario demo\n[topology]\ngenerator fig1\n[workloads]\ndemand uniform cells=1\n";
//! let body = format!("{{\"tenant\": \"demo\", \"scenario\": \"{}\"}}", scn.replace('\n', "\\n"));
//! assert_eq!(client.post("/networks", &body).unwrap().status, 201);
//! let bill = client.post("/networks/demo/adjust", "{\"node\": 9, \"cells\": 2}").unwrap();
//! assert!(bill.body.contains("mgmt_messages"));
//! assert_eq!(client.post("/shutdown?token=tok", "").unwrap().status, 200);
//! let summary = join.join().unwrap();
//! assert!(summary.metrics.counter("harpd.requests_total").unwrap() >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;
pub mod state;
