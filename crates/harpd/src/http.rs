//! A minimal, strict HTTP/1.1 message layer over blocking sockets.
//!
//! Hand-rolled like the workspace's JSON writer: no dependency, no async.
//! The parser is *incremental* — [`try_parse`] consumes a byte buffer and
//! either yields a complete [`Request`] plus the bytes it consumed, asks
//! for more input, or rejects with an [`HttpError`] carrying the 4xx
//! status to answer with. Incremental parsing is what makes split reads
//! and pipelined requests (several messages already buffered) natural: the
//! connection loop keeps a rolling buffer and re-parses as bytes arrive.
//!
//! Hard limits keep a hostile peer from pinning a worker: request heads
//! over [`MAX_HEAD_BYTES`] are rejected with 431, bodies over
//! [`MAX_BODY_BYTES`] with 413, and more than [`MAX_HEADERS`] header
//! lines with 431. Anything malformed — a bad start-line, a non-CRLF
//! line ending, a header without a colon, an unparsable
//! `content-length` — is a clean 400, never a panic and never a hang.

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request body bytes (inline scenario files stay far below).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Maximum header count.
pub const MAX_HEADERS: usize = 64;

/// A parse or I/O failure with the HTTP status that answers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status (4xx for protocol violations, 408 for timeouts).
    pub status: u16,
    /// Human-readable detail, returned in the error body.
    pub message: String,
}

impl HttpError {
    /// Builds an error with `status` and `message`.
    #[must_use]
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, upper-case (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string, e.g. `/networks/t1/schedule`.
    pub path: String,
    /// Decoded query pairs in request order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `content-length`).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this one.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lower-case) header name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query key.
    #[must_use]
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    ///
    /// # Errors
    ///
    /// A 400 [`HttpError`] when the body is not valid UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::new(400, "request body is not valid UTF-8"))
    }
}

/// Outcome of one [`try_parse`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A complete request and the number of buffer bytes it consumed
    /// (strip them before parsing the next pipelined message).
    Complete(Request, usize),
    /// The buffer holds only a prefix of a message; read more bytes.
    Incomplete,
}

fn bad(message: impl Into<String>) -> HttpError {
    HttpError::new(400, message)
}

/// Percent-decodes a URL component (`%41` → `A`, `+` is *not* treated as a
/// space — the daemon's tokens and tenant ids never encode spaces).
fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| bad("malformed percent-encoding"))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| bad("percent-encoding decodes to invalid UTF-8"))
}

fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    if !target.starts_with('/') {
        return Err(bad("request target must be origin-form (start with '/')"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut pairs = Vec::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        pairs.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok((percent_decode(path)?, pairs))
}

/// Attempts to parse one request from the front of `buf`.
///
/// # Errors
///
/// An [`HttpError`] (4xx) when the buffered bytes can never become a valid
/// message: malformed start-line or header, oversized head/body, bare-LF
/// line endings, unsupported transfer framing.
pub fn try_parse(buf: &[u8]) -> Result<Parsed, HttpError> {
    // Locate the head terminator within the size limit.
    let window = &buf[..buf.len().min(MAX_HEAD_BYTES)];
    let head_end = window.windows(4).position(|w| w == b"\r\n\r\n");
    let Some(head_end) = head_end else {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head exceeds 16 KiB"));
        }
        // A bare "\n\n" will never grow a CRLF terminator; fail early so a
        // sloppy client gets a 400 instead of a read-timeout 408.
        if window.windows(2).any(|w| w == b"\n\n") {
            return Err(bad("header lines must end with CRLF"));
        }
        return Ok(Parsed::Incomplete);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| bad("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let start = lines.next().unwrap_or_default();
    if start.chars().any(|c| c.is_control()) {
        return Err(bad("control character in start-line"));
    }
    let mut parts = start.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(bad("start-line must be 'METHOD target HTTP/1.x'"));
    };
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(bad("method must be upper-case ASCII"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad("unsupported HTTP version"));
    }
    let (path, query) = parse_target(target)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(431, "too many header lines"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("header line without ':'"))?;
        if name.is_empty()
            || name
                .chars()
                .any(|c| c.is_whitespace() || c.is_control() || c == ',')
        {
            return Err(bad("malformed header name"));
        }
        if value.chars().any(|c| c.is_control() && c != '\t') {
            return Err(bad("control character in header value"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let find = |n: &str| {
        headers
            .iter()
            .find(|(name, _)| name == n)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(bad(
            "transfer-encoding is not supported; send content-length",
        ));
    }
    let content_length = match find("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| bad("unparsable content-length"))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body exceeds 4 MiB"));
    }
    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(Parsed::Incomplete);
    }

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => version == "HTTP/1.1",
    };
    Ok(Parsed::Complete(
        Request {
            method: method.to_owned(),
            path,
            query,
            headers,
            body: buf[body_start..total].to_vec(),
            keep_alive,
        },
        total,
    ))
}

/// One response, always framed with `content-length` (no chunking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `content-type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// When set, the server closes the connection after writing.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Self::json_bytes(status, body.into_bytes())
    }

    /// A JSON response from already-assembled bytes (the handlers build
    /// bodies with [`harp_obs::json::JsonBuf`] into pooled buffers).
    #[must_use]
    pub fn json_bytes(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
            close: false,
        }
    }

    /// A plain-text response (Prometheus exposition uses its own type).
    #[must_use]
    pub fn text(status: u16, content_type: &'static str, body: String) -> Self {
        Self {
            status,
            content_type,
            body: body.into_bytes(),
            close: false,
        }
    }

    /// The canonical error body for an [`HttpError`].
    #[must_use]
    pub fn from_error(err: &HttpError) -> Self {
        let mut r = Self::json(
            err.status,
            format!("{{\"error\": \"{}\"}}\n", escape_json(&err.message)),
        );
        // Framing may be lost after a protocol error; never reuse the
        // connection.
        r.close = true;
        r
    }

    /// Serialises status line, headers and body onto `stream`.
    ///
    /// # Errors
    ///
    /// The underlying socket write error.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let connection = if self.close { "close" } else { "keep-alive" };
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Canonical reason phrase for the statuses the daemon emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Status",
    }
}

/// Escapes a string for embedding in a JSON string literal — the shared
/// workspace helper, re-exported where the daemon's handlers historically
/// found it.
pub use harp_obs::json::escape_json;

/// Reads the next complete request from `stream`, buffering leftovers in
/// `buf` across calls (pipelining).
///
/// Returns `Ok(None)` on clean end-of-stream (peer closed between
/// requests) and on a read timeout with nothing buffered (idle keep-alive
/// connection going away).
///
/// # Errors
///
/// A parse [`HttpError`], 408 when a partial message times out, or 400
/// when the peer closes mid-message.
pub fn next_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> Result<Option<Request>, HttpError> {
    next_request_timed(stream, buf).map(|r| r.map(|(req, _)| req))
}

/// [`next_request`], also reporting the microseconds spent *parsing* the
/// message (CPU over all incremental [`try_parse`] passes, excluding
/// socket waits) — the `parse` span of the request trace.
///
/// # Errors
///
/// As [`next_request`].
pub fn next_request_timed(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> Result<Option<(Request, u64)>, HttpError> {
    let mut chunk = [0u8; 8 * 1024];
    let mut parse_us: u64 = 0;
    loop {
        let started = std::time::Instant::now();
        let parsed = try_parse(buf);
        parse_us = parse_us
            .saturating_add(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        match parsed? {
            Parsed::Complete(req, consumed) => {
                buf.drain(..consumed);
                return Ok(Some((req, parse_us)));
            }
            Parsed::Incomplete => {}
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(bad("peer closed mid-request"));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::new(408, "timed out mid-request"));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(bad(format!("socket read failed: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &str) -> Request {
        match try_parse(raw.as_bytes()).expect("parses") {
            Parsed::Complete(req, consumed) => {
                assert_eq!(consumed, raw.len());
                req
            }
            Parsed::Incomplete => panic!("expected complete parse"),
        }
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse_ok("GET /networks/t1/schedule?verbose=1&x=%2F HTTP/1.1\r\nhost: a\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/networks/t1/schedule");
        assert_eq!(req.query_value("verbose"), Some("1"));
        assert_eq!(req.query_value("x"), Some("/"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_detects_close() {
        let req = parse_ok(
            "POST /networks HTTP/1.1\r\ncontent-length: 4\r\nConnection: close\r\n\r\nabcd",
        );
        assert_eq!(req.body, b"abcd");
        assert!(!req.keep_alive);
        assert_eq!(req.header("connection"), Some("close"));
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse_ok("GET /health HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive);
        let req = parse_ok("GET /health HTTP/1.0\r\nconnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive);
    }

    #[test]
    fn incomplete_until_body_arrives() {
        let raw = "POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\n12345";
        assert_eq!(try_parse(raw.as_bytes()).unwrap(), Parsed::Incomplete);
        let full = format!("{raw}67890");
        assert!(matches!(
            try_parse(full.as_bytes()).unwrap(),
            Parsed::Complete(_, _)
        ));
    }

    #[test]
    fn pipelined_requests_report_consumed_bytes() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let Parsed::Complete(req, consumed) = try_parse(raw.as_bytes()).unwrap() else {
            panic!()
        };
        assert_eq!(req.path, "/a");
        let Parsed::Complete(req2, consumed2) = try_parse(&raw.as_bytes()[consumed..]).unwrap()
        else {
            panic!()
        };
        assert_eq!(req2.path, "/b");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn malformed_start_lines_are_400() {
        for raw in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/2.0\r\n\r\n",
            "GET /x%zz HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header\r\n\r\n",
            "GET /x HTTP/1.1\r\nna me: v\r\n\r\n",
            "GET /x HTTP/1.1\r\ncontent-length: ten\r\n\r\n",
            "GET /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ] {
            let err = try_parse(raw.as_bytes()).unwrap_err();
            assert_eq!(err.status, 400, "{raw:?} -> {err}");
        }
    }

    #[test]
    fn bare_lf_heads_fail_fast() {
        let err = try_parse(b"GET /x HTTP/1.1\n\n").unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        let err = try_parse(&raw).unwrap_err();
        assert_eq!(err.status, 431);
        let mut many = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            many.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert_eq!(try_parse(&many).unwrap_err().status, 431);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(try_parse(raw.as_bytes()).unwrap_err().status, 413);
    }

    #[test]
    fn response_serialises_with_content_length() {
        let r = Response::json(200, "{}".into());
        assert_eq!(r.status, 200);
        assert!(!r.close);
        let err = Response::from_error(&HttpError::new(431, "too big"));
        assert!(err.close);
        assert!(String::from_utf8(err.body).unwrap().contains("too big"));
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
