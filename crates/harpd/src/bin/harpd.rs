//! The `harpd` binary: bind, serve, drain, print the final metrics.
//!
//! ```text
//! harpd [--addr 127.0.0.1] [--port 0] [--workers 4] \
//!       [--token <secret>] [--scenario-dir scenarios] [--slo-us 2000000]
//! ```
//!
//! Prints `harpd listening on <addr>:<port>` once ready (the load
//! generator and CI smoke poll for the socket, but the line makes logs
//! self-describing), serves until a token-matched `POST /shutdown`, then
//! prints the final Prometheus snapshot to stdout and exits 0.

use std::time::Duration;

use harpd::server::{Server, ServerConfig};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: harpd [--addr ADDR] [--port PORT] [--workers N] [--token SECRET] [--scenario-dir DIR] [--slo-us MICROS]"
        );
        return;
    }
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1".to_owned());
    let port = arg_value(&args, "--port").unwrap_or_else(|| "0".to_owned());
    let workers: usize = arg_value(&args, "--workers")
        .map(|w| w.parse().expect("--workers takes a number"))
        .unwrap_or(4);
    let token = arg_value(&args, "--token").unwrap_or_else(|| "harpd".to_owned());
    let scenario_dir = arg_value(&args, "--scenario-dir").unwrap_or_else(|| "scenarios".to_owned());
    let slo_us: u64 = arg_value(&args, "--slo-us")
        .map(|v| v.parse().expect("--slo-us takes microseconds"))
        .unwrap_or(harpd::state::DEFAULT_SLO_US);

    let config = ServerConfig {
        addr: format!("{addr}:{port}"),
        workers,
        token,
        scenario_dir: scenario_dir.into(),
        read_timeout: Duration::from_secs(5),
        slo_us,
    };
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("harpd: bind {addr}:{port} failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(local) => println!("harpd listening on {local}"),
        Err(e) => eprintln!("harpd: local_addr: {e}"),
    }

    let summary = server.run();
    println!("harpd: drained with {} network(s) hosted", summary.networks);
    print!("{}", summary.exposition());
}
