//! HARP — a reproduction of *HARP: Hierarchical Resource Partitioning in
//! Dynamic Industrial Wireless Networks* (Wang et al., ICDCS 2022).
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`core`] — the HARP algorithms and distributed deployment
//!   ([`harp_core`]).
//! * [`sim`] — the slot-level TSCH network simulator ([`tsch_sim`]).
//! * [`packing`] — the 2-D rectangle-packing substrate.
//! * [`schedulers`] — the Random/MSF/LDSF/APaS comparison schedulers.
//! * [`workloads`] — seeded topologies, task sets and scenarios.
//!
//! # Examples
//!
//! ```
//! use harp::core::{HarpNetwork, SchedulingPolicy};
//! use harp::sim::{Link, SlotframeConfig, Tree};
//!
//! # fn main() -> Result<(), harp::core::HarpError> {
//! let tree = Tree::paper_fig1_example();
//! let mut reqs = harp::core::Requirements::new();
//! for v in tree.nodes().skip(1) {
//!     reqs.set(Link::up(v), 1);
//! }
//! let mut net = HarpNetwork::new(
//!     tree,
//!     SlotframeConfig::paper_default(),
//!     &reqs,
//!     SchedulingPolicy::RateMonotonic,
//! );
//! net.run_static()?;
//! assert!(net.schedule().is_exclusive());
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable scenarios and
//! `crates/bench/src/bin/` for the binaries regenerating every table and
//! figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use packing;
pub use schedulers;
pub use workloads;

/// The HARP algorithms and distributed deployment (re-export of
/// [`harp_core`]).
pub mod core {
    pub use harp_core::*;
}

/// The slot-level TSCH network simulator (re-export of [`tsch_sim`]).
pub mod sim {
    pub use tsch_sim::*;
}
