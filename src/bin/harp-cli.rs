//! Thin binary wrapper over [`harp::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match harp::cli::CliCommand::parse(&args).and_then(harp::cli::run) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
