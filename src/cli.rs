//! The `harp-cli` command-line interface: run the HARP pipeline, simulate
//! traffic, measure adjustments, check deadlines and lint scenario files
//! from a shell.
//!
//! The parser and command runners live in the library so they are unit
//! tested; the binary (`src/bin/harp-cli.rs`) is a thin wrapper. The
//! `scenarios` commands run both the grammar parse (positioned
//! diagnostics) and the compile checks against each scenario's own
//! topology — an out-of-tree node or an unresolvable link selector fails
//! validation, not the run.

use harp_core::{
    check_deadlines, render_super_partitions, render_utilization, DeadlineTask, HarpNetwork,
    Requirements, SchedulingPolicy,
};
use schedulers::{
    AliceScheduler, HarpScheduler, LdsfScheduler, MsfScheduler, RandomScheduler, Scheduler,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use tsch_sim::{
    Direction, GlobalInterference, Link, LinkQuality, NodeId, Rate, SimulatorBuilder,
    SlotframeConfig,
};
use workloads::scenario_dsl::{parse_scenario, ReportMode, Scenario};
use workloads::TopologyConfig;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    /// `partition`: run the static pipeline and print the layout.
    Partition(NetArgs),
    /// `simulate`: run the data plane and print per-layer latencies.
    Simulate {
        /// Network parameters.
        net: NetArgs,
        /// Slotframes to simulate.
        frames: u64,
        /// Per-link packet delivery ratio.
        pdr: f64,
    },
    /// `adjust`: measure one traffic-change adjustment.
    Adjust {
        /// Network parameters.
        net: NetArgs,
        /// The node whose uplink demand changes.
        node: u32,
        /// The new cell count.
        cells: u32,
    },
    /// `deadlines`: analytic admission check.
    Deadlines {
        /// Network parameters.
        net: NetArgs,
        /// Relative deadline in slotframes.
        frames: u64,
    },
    /// `collisions`: average collision probability of one scheduler.
    Collisions {
        /// Scheduler name (random|msf|alice|ldsf|harp).
        scheduler: String,
        /// Cells per uplink.
        rate: u32,
        /// Topologies to average over.
        count: usize,
    },
    /// `serve`: run the multi-tenant `harpd` service until shut down.
    Serve {
        /// Bind address (default 127.0.0.1).
        addr: String,
        /// Bind port (default 7464; 0 picks a free port).
        port: u16,
        /// Worker threads.
        workers: usize,
        /// Shutdown token (`POST /shutdown?token=...`).
        token: String,
        /// Directory named `scenario_file` bodies resolve under.
        scenario_dir: String,
        /// Per-request latency SLO in microseconds; a slower request
        /// trips the flight recorder into freezing an incident.
        slo_us: u64,
    },
    /// `scenarios list`: list + validate the checked-in scenario files.
    ScenariosList,
    /// `scenarios validate <file>..`: parse + compile-check scenario files.
    ScenariosValidate(Vec<String>),
    /// `help`: usage text.
    Help,
}

/// Shared network parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetArgs {
    /// Node count.
    pub nodes: u32,
    /// Layer count.
    pub layers: u32,
    /// Topology seed.
    pub seed: u64,
    /// Cells per uplink/downlink.
    pub rate: u32,
    /// Channel count.
    pub channels: u16,
}

impl Default for NetArgs {
    fn default() -> Self {
        Self {
            nodes: 50,
            layers: 5,
            seed: 0,
            rate: 1,
            channels: 16,
        }
    }
}

/// The usage text printed by `help` and on parse errors.
pub const USAGE: &str = "\
harp-cli — hierarchical resource partitioning for industrial wireless networks

USAGE:
  harp-cli partition  [--nodes N] [--layers L] [--seed S] [--rate R] [--channels C]
  harp-cli simulate   [net args] [--frames F] [--pdr P]
  harp-cli adjust     [net args] --node X --cells C
  harp-cli deadlines  [net args] [--frames F]
  harp-cli collisions --scheduler random|msf|alice|ldsf|harp [--rate R] [--count N]
  harp-cli serve      [--addr A] [--port P] [--workers W] [--token T] [--scenario-dir D] [--slo-us U]
  harp-cli scenarios  list
  harp-cli scenarios  validate <file.scn>..
  harp-cli help
";

fn parse_kv(args: &[String]) -> Result<std::collections::BTreeMap<String, String>, String> {
    let mut map = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    map: &std::collections::BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match map.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: '{v}'")),
        None => Ok(default),
    }
}

fn parse_net(map: &std::collections::BTreeMap<String, String>) -> Result<NetArgs, String> {
    let d = NetArgs::default();
    Ok(NetArgs {
        nodes: get(map, "nodes", d.nodes)?,
        layers: get(map, "layers", d.layers)?,
        seed: get(map, "seed", d.seed)?,
        rate: get(map, "rate", d.rate)?,
        channels: get(map, "channels", d.channels)?,
    })
}

impl CliCommand {
    /// Parses a command line (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown commands, flags or
    /// malformed values.
    pub fn parse(args: &[String]) -> Result<CliCommand, String> {
        let Some(command) = args.first() else {
            return Ok(CliCommand::Help);
        };
        // `scenarios` takes positional operands, not --flag pairs.
        if command == "scenarios" {
            return match args.get(1).map(String::as_str) {
                Some("list") => Ok(CliCommand::ScenariosList),
                Some("validate") if args.len() > 2 => {
                    Ok(CliCommand::ScenariosValidate(args[2..].to_vec()))
                }
                Some("validate") => Err("`scenarios validate` needs at least one file".into()),
                Some(other) => Err(format!("unknown scenarios subcommand '{other}'\n{USAGE}")),
                None => Err(format!("`scenarios` needs a subcommand\n{USAGE}")),
            };
        }
        let map = parse_kv(&args[1..])?;
        match command.as_str() {
            "partition" => Ok(CliCommand::Partition(parse_net(&map)?)),
            "simulate" => Ok(CliCommand::Simulate {
                net: parse_net(&map)?,
                frames: get(&map, "frames", 50)?,
                pdr: get(&map, "pdr", 1.0)?,
            }),
            "adjust" => Ok(CliCommand::Adjust {
                net: parse_net(&map)?,
                node: get(&map, "node", u32::MAX).and_then(|n: u32| {
                    if n == u32::MAX {
                        Err("--node is required".into())
                    } else {
                        Ok(n)
                    }
                })?,
                cells: get(&map, "cells", 0).and_then(|c: u32| {
                    if c == 0 {
                        Err("--cells is required".into())
                    } else {
                        Ok(c)
                    }
                })?,
            }),
            "deadlines" => Ok(CliCommand::Deadlines {
                net: parse_net(&map)?,
                frames: get(&map, "frames", 2)?,
            }),
            "collisions" => Ok(CliCommand::Collisions {
                scheduler: map
                    .get("scheduler")
                    .cloned()
                    .ok_or("--scheduler is required")?,
                rate: get(&map, "rate", 3)?,
                count: get(&map, "count", 20)?,
            }),
            "serve" => Ok(CliCommand::Serve {
                addr: map
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1".into()),
                port: get(&map, "port", 7464)?,
                workers: get(&map, "workers", 4)?,
                token: map.get("token").cloned().unwrap_or_else(|| "harpd".into()),
                scenario_dir: map
                    .get("scenario-dir")
                    .cloned()
                    .unwrap_or_else(|| scenario_dir().display().to_string()),
                slo_us: get(&map, "slo-us", harpd::state::DEFAULT_SLO_US)?,
            }),
            "help" | "--help" | "-h" => Ok(CliCommand::Help),
            other => Err(format!("unknown command '{other}'\n{USAGE}")),
        }
    }
}

fn build_network(net: NetArgs) -> Result<(tsch_sim::Tree, Requirements, SlotframeConfig), String> {
    if net.nodes <= net.layers {
        return Err(format!(
            "need more than {} nodes for {} layers",
            net.layers, net.layers
        ));
    }
    let tree = TopologyConfig {
        nodes: net.nodes,
        layers: net.layers,
        max_children: 8,
    }
    .generate(net.seed);
    let config = SlotframeConfig::paper_default()
        .with_channels(net.channels)
        .map_err(|e| e.to_string())?;
    let reqs = workloads::uniform_link_requirements(&tree, net.rate);
    Ok((tree, reqs, config))
}

/// Executes a parsed command and returns its output text.
///
/// # Errors
///
/// Returns a human-readable message for infeasible configurations.
pub fn run(command: CliCommand) -> Result<String, String> {
    match command {
        CliCommand::Help => Ok(USAGE.to_string()),
        CliCommand::Serve {
            addr,
            port,
            workers,
            token,
            scenario_dir,
            slo_us,
        } => {
            let config = harpd::server::ServerConfig {
                addr: format!("{addr}:{port}"),
                workers,
                token,
                scenario_dir: scenario_dir.into(),
                read_timeout: std::time::Duration::from_secs(5),
                slo_us,
            };
            let server = harpd::server::Server::bind(config).map_err(|e| e.to_string())?;
            let local = server.local_addr().map_err(|e| e.to_string())?;
            // `run` blocks until a token-matched shutdown drains the pool;
            // the returned summary is the final metrics flush.
            println!("harpd listening on {local}");
            let summary = server.run();
            Ok(format!(
                "harpd drained ({} network(s) hosted)\n{}",
                summary.networks,
                summary.exposition()
            ))
        }
        CliCommand::ScenariosList => list_scenarios(),
        CliCommand::ScenariosValidate(files) => {
            let mut out = String::new();
            for file in &files {
                let scenario = validate_scenario_file(Path::new(file))?;
                let _ = writeln!(out, "{file}: ok ({})", describe_scenario(&scenario));
            }
            Ok(out)
        }
        CliCommand::Partition(net) => {
            let (tree, reqs, config) = build_network(net)?;
            let mut hn =
                HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
            let report = hn.run_static().map_err(|e| e.to_string())?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{} nodes, {} layers (seed {}): converged in {:.2} s with {} mgmt messages",
                net.nodes,
                net.layers,
                net.seed,
                report.elapsed_seconds(config),
                report.mgmt_messages
            );
            out.push_str(&render_super_partitions(
                &tree,
                &partition_table(&tree, &reqs, config)?,
            ));
            let _ = writeln!(out, "{}", render_utilization(hn.schedule()));
            let _ = writeln!(out, "exclusive: {}", hn.schedule().is_exclusive());
            Ok(out)
        }
        CliCommand::Simulate { net, frames, pdr } => {
            let (tree, reqs, config) = build_network(net)?;
            let mut hn =
                HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
            hn.run_static().map_err(|e| e.to_string())?;
            let mut builder = SimulatorBuilder::new(tree.clone(), config)
                .schedule(hn.schedule().clone())
                .quality(LinkQuality::uniform(pdr).map_err(|e| e.to_string())?)
                .max_retries(0)
                .seed(net.seed);
            for task in workloads::echo_task_per_node(&tree, Rate::per_slotframe(net.rate)) {
                builder = builder.task(task).map_err(|e| e.to_string())?;
            }
            let mut sim = builder.build();
            sim.run_slotframes(frames);
            let stats = sim.stats();
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{} frames: {} generated, {} delivered, {} collisions, {} losses",
                frames,
                stats.generated,
                stats.deliveries.len(),
                stats.collisions,
                stats.losses
            );
            let slot_s = f64::from(config.slot_duration_us) / 1e6;
            for layer in 1..=tree.layers() {
                let nodes = tree.nodes_at_depth(layer);
                let mut sum = 0.0;
                let mut n = 0;
                for node in nodes {
                    let s = stats.latency_summary(node);
                    if s.count > 0 {
                        sum += s.mean * slot_s;
                        n += 1;
                    }
                }
                let _ = writeln!(
                    out,
                    "layer {layer}: mean e2e latency {:.3} s over {n} nodes",
                    if n > 0 { sum / f64::from(n) } else { 0.0 }
                );
            }
            Ok(out)
        }
        CliCommand::Adjust { net, node, cells } => {
            let (tree, reqs, config) = build_network(net)?;
            if node as usize >= tree.len() || node == 0 {
                return Err(format!(
                    "--node must name a non-gateway node < {}",
                    tree.len()
                ));
            }
            let mut hn =
                HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
            hn.run_static().map_err(|e| e.to_string())?;
            let link = Link::up(NodeId(node));
            let report = hn
                .adjust_and_settle(hn.now(), link, cells)
                .map_err(|e| e.to_string())?;
            Ok(format!(
                "adjusted {link} to {cells} cells: {} mgmt msgs, {} nodes, {:.2} s ({} slotframes); exclusive: {}\n",
                report.mgmt_messages,
                report.involved_nodes.len(),
                report.elapsed_seconds(config),
                report.slotframes(config),
                hn.schedule().is_exclusive()
            ))
        }
        CliCommand::Deadlines { net, frames } => {
            let (tree, reqs, config) = build_network(net)?;
            let mut hn =
                HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
            hn.run_static().map_err(|e| e.to_string())?;
            let deadline = frames * u64::from(config.slots);
            let tasks: Vec<DeadlineTask> =
                workloads::echo_task_per_node(&tree, Rate::per_slotframe(net.rate))
                    .into_iter()
                    .map(|task| DeadlineTask {
                        task,
                        deadline_slots: deadline,
                    })
                    .collect();
            let verdicts =
                check_deadlines(hn.schedule(), &tree, &tasks).map_err(|e| e.to_string())?;
            let ok = verdicts.iter().filter(|v| v.is_schedulable()).count();
            Ok(format!(
                "{ok}/{} tasks provably meet a {frames}-slotframe deadline\n",
                verdicts.len()
            ))
        }
        CliCommand::Collisions {
            scheduler,
            rate,
            count,
        } => {
            let s: &dyn Scheduler = match scheduler.as_str() {
                "random" => &RandomScheduler,
                "msf" => &MsfScheduler,
                "alice" => &AliceScheduler,
                "ldsf" => &LdsfScheduler,
                "harp" => &HarpScheduler {
                    policy: SchedulingPolicy::RateMonotonic,
                },
                other => return Err(format!("unknown scheduler '{other}'")),
            };
            let config = SlotframeConfig::paper_default();
            let topologies = TopologyConfig::paper_50_node().generate_batch(0xF1_611, count);
            let mut sum = 0.0;
            for (i, tree) in topologies.iter().enumerate() {
                let reqs = workloads::uniform_uplink_requirements(tree, rate);
                let schedule = s.build_schedule(tree, &reqs, config, i as u64);
                sum += schedule
                    .collision_report(tree, &GlobalInterference)
                    .collision_probability();
            }
            Ok(format!(
                "{}: average collision probability {:.2}% over {count} topologies at rate {rate}\n",
                s.name(),
                sum / count as f64 * 100.0
            ))
        }
    }
}

/// The checked-in scenario directory at the workspace root (this crate's
/// manifest directory under cargo, the working directory otherwise).
#[must_use]
pub fn scenario_dir() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => Path::new(&dir).join("scenarios"),
        Err(_) => PathBuf::from("scenarios"),
    }
}

/// Parses and compile-checks one scenario file.
///
/// # Errors
///
/// `"<path>: line L, column C: ..."` for grammar errors, or
/// `"<path>: ..."` for compile failures against the scenario's topology.
pub fn validate_scenario_file(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let scenario = parse_scenario(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let prefix = |e: String| format!("{}: {e}", path.display());
    scenario.slotframe_config().map_err(prefix)?;
    // The quick batch is enough: every tree in a batch shares node count
    // and depth, which is all the compile checks consult.
    for tree in scenario.trees(true) {
        scenario.data_fault_plan(&tree).map_err(prefix)?;
        scenario.demand_step_events(&tree).map_err(prefix)?;
    }
    Ok(scenario)
}

fn describe_scenario(s: &Scenario) -> String {
    let mode = match s.report.mode {
        ReportMode::Timeline { node } => format!("timeline node={node}"),
        ReportMode::PdrSweep => "pdr_sweep".into(),
        ReportMode::Adjustments => "adjustments".into(),
        ReportMode::Replicates { repeats } => format!("replicates repeats={repeats}"),
        ReportMode::Churn => "churn".into(),
    };
    format!(
        "{}, {} frames, {} faults, mode {mode}",
        s.name,
        s.frames,
        s.faults.len()
    )
}

fn list_scenarios() -> Result<String, String> {
    let dir = scenario_dir();
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    files.sort();
    let mut out = String::new();
    for path in files {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        match validate_scenario_file(&path) {
            Ok(s) => {
                let _ = writeln!(out, "{name:<24} {}", describe_scenario(&s));
            }
            Err(e) => {
                let _ = writeln!(out, "{name:<24} INVALID: {e}");
            }
        }
    }
    if out.is_empty() {
        out.push_str("(no scenario files found)\n");
    }
    Ok(out)
}

/// Rebuilds the centralized partition table for rendering (the distributed
/// run and the oracle agree; proven by the test suite).
fn partition_table(
    tree: &tsch_sim::Tree,
    reqs: &Requirements,
    config: SlotframeConfig,
) -> Result<harp_core::PartitionTable, String> {
    let up = harp_core::build_interfaces(tree, reqs, Direction::Up, config.channels)
        .map_err(|e| e.to_string())?;
    let down = harp_core::build_interfaces(tree, reqs, Direction::Down, config.channels)
        .map_err(|e| e.to_string())?;
    harp_core::allocate_partitions(tree, &up, &down, config).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_defaults() {
        let cmd = CliCommand::parse(&args("partition")).unwrap();
        assert_eq!(cmd, CliCommand::Partition(NetArgs::default()));
    }

    #[test]
    fn parse_overrides() {
        let cmd =
            CliCommand::parse(&args("partition --nodes 20 --layers 3 --seed 7 --rate 2")).unwrap();
        let CliCommand::Partition(net) = cmd else {
            panic!()
        };
        assert_eq!((net.nodes, net.layers, net.seed, net.rate), (20, 3, 7, 2));
    }

    #[test]
    fn parse_errors_are_helpful() {
        assert!(CliCommand::parse(&args("partition --nodes"))
            .unwrap_err()
            .contains("value"));
        assert!(CliCommand::parse(&args("partition nodes 3"))
            .unwrap_err()
            .contains("--flag"));
        assert!(CliCommand::parse(&args("frobnicate"))
            .unwrap_err()
            .contains("unknown command"));
        assert!(CliCommand::parse(&args("adjust"))
            .unwrap_err()
            .contains("--node"));
        assert!(CliCommand::parse(&args("collisions"))
            .unwrap_err()
            .contains("--scheduler"));
        assert!(CliCommand::parse(&args("partition --nodes abc"))
            .unwrap_err()
            .contains("invalid value"));
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(CliCommand::parse(&[]).unwrap(), CliCommand::Help);
        assert!(run(CliCommand::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn parse_scenarios_commands() {
        assert_eq!(
            CliCommand::parse(&args("scenarios list")).unwrap(),
            CliCommand::ScenariosList
        );
        assert_eq!(
            CliCommand::parse(&args("scenarios validate a.scn b.scn")).unwrap(),
            CliCommand::ScenariosValidate(vec!["a.scn".into(), "b.scn".into()])
        );
        assert!(CliCommand::parse(&args("scenarios validate"))
            .unwrap_err()
            .contains("at least one file"));
        assert!(CliCommand::parse(&args("scenarios frobnicate"))
            .unwrap_err()
            .contains("unknown scenarios subcommand"));
    }

    #[test]
    fn scenario_validation_reports_line_and_column() {
        let dir = std::env::temp_dir().join("harp_cli_validate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.scn");
        std::fs::write(&bad, "scenario x\n[faults]\nmeteor node=1\n").unwrap();
        let err = validate_scenario_file(&bad).unwrap_err();
        assert!(err.contains("bad.scn: line 3, column 1"), "got: {err}");
        assert!(err.contains("unknown fault kind"));

        // Grammar-valid but compile-invalid: node outside the topology.
        let oob = dir.join("oob.scn");
        std::fs::write(
            &oob,
            "scenario x\n[topology]\nlink 1 0\n[faults]\ncrash node=9 at_frame=1\n",
        )
        .unwrap();
        let err = validate_scenario_file(&oob).unwrap_err();
        assert!(err.contains("outside the tree"), "got: {err}");
    }

    #[test]
    fn checked_in_scenarios_all_validate() {
        let out = run(CliCommand::ScenariosList).unwrap();
        assert!(out.contains("fig10_dynamic.scn"), "got: {out}");
        assert!(out.contains("mgmt_loss.scn"));
        assert!(out.contains("table2_adjustment.scn"));
        assert!(out.contains("fault_storm.scn"));
        assert!(out.contains("gateway_failover.scn"));
        assert!(out.contains("reparent_churn.scn"));
        assert!(!out.contains("INVALID"), "got: {out}");
    }

    #[test]
    fn partition_runs_end_to_end() {
        let out = run(CliCommand::Partition(NetArgs {
            nodes: 15,
            layers: 3,
            seed: 1,
            rate: 1,
            channels: 16,
        }))
        .unwrap();
        assert!(out.contains("exclusive: true"));
        assert!(out.contains("cells assigned"));
    }

    #[test]
    fn simulate_runs_end_to_end() {
        let out = run(CliCommand::Simulate {
            net: NetArgs {
                nodes: 12,
                layers: 3,
                seed: 2,
                rate: 1,
                channels: 16,
            },
            frames: 5,
            pdr: 1.0,
        })
        .unwrap();
        assert!(out.contains("0 collisions"));
        assert!(out.contains("layer 1"));
    }

    #[test]
    fn adjust_runs_end_to_end() {
        let out = run(CliCommand::Adjust {
            net: NetArgs {
                nodes: 12,
                layers: 3,
                seed: 2,
                rate: 1,
                channels: 16,
            },
            node: 5,
            cells: 3,
        })
        .unwrap();
        assert!(out.contains("exclusive: true"));
    }

    #[test]
    fn deadlines_runs_end_to_end() {
        let out = run(CliCommand::Deadlines {
            net: NetArgs {
                nodes: 12,
                layers: 3,
                seed: 2,
                rate: 1,
                channels: 16,
            },
            frames: 2,
        })
        .unwrap();
        assert!(out.contains("provably meet"));
    }

    #[test]
    fn collisions_runs_end_to_end() {
        let out = run(CliCommand::Collisions {
            scheduler: "harp".into(),
            rate: 2,
            count: 3,
        })
        .unwrap();
        assert!(out.contains("harp"));
        assert!(
            out.contains("0.00%"),
            "harp never collides at rate 2: {out}"
        );
        assert!(run(CliCommand::Collisions {
            scheduler: "nope".into(),
            rate: 1,
            count: 1
        })
        .is_err());
    }

    #[test]
    fn parse_serve_defaults_and_overrides() {
        let cmd = CliCommand::parse(&args("serve")).unwrap();
        let CliCommand::Serve {
            addr,
            port,
            workers,
            token,
            ..
        } = cmd
        else {
            panic!()
        };
        assert_eq!(
            (addr.as_str(), port, workers, token.as_str()),
            ("127.0.0.1", 7464, 4, "harpd")
        );
        let cmd = CliCommand::parse(&args(
            "serve --port 0 --workers 2 --token s --addr 0.0.0.0 --slo-us 500000",
        ))
        .unwrap();
        let CliCommand::Serve {
            addr,
            port,
            workers,
            slo_us,
            ..
        } = cmd
        else {
            panic!()
        };
        assert_eq!(
            (addr.as_str(), port, workers, slo_us),
            ("0.0.0.0", 0, 2, 500_000)
        );
        assert!(CliCommand::parse(&args("serve --port notaport"))
            .unwrap_err()
            .contains("invalid value"));
    }

    #[test]
    fn serve_runs_and_drains() {
        // Bind a free port, drive one request through a real socket, shut
        // down via the token, and check the drain summary.
        let config = harpd::server::ServerConfig::loopback(1, "cli-test", "scenarios");
        let server = harpd::server::Server::bind(config).unwrap();
        let addr = server.local_addr().unwrap();
        let join = std::thread::spawn(move || server.run());
        let mut client = harpd::client::HttpClient::new(addr);
        assert_eq!(client.get("/health").unwrap().status, 200);
        assert_eq!(
            client.post("/shutdown?token=cli-test", "").unwrap().status,
            200
        );
        let summary = join.join().unwrap();
        assert!(summary.exposition().contains("harpd_requests_total"));
    }

    #[test]
    fn invalid_network_rejected() {
        let err = run(CliCommand::Partition(NetArgs {
            nodes: 3,
            layers: 5,
            seed: 0,
            rate: 1,
            channels: 16,
        }))
        .unwrap_err();
        assert!(err.contains("need more"));
    }
}
