//! Integration tests for the two future-work extensions: the end-to-end
//! latency/deadline analysis validated against the simulator, and HARP over
//! mesh topologies decomposed into a routing tree plus interference edges.

use harp::core::{check_deadlines, latency_bound, DeadlineTask, HarpNetwork, SchedulingPolicy};
use harp::sim::{Rate, SimulatorBuilder, SlotframeConfig, Task, TaskId, TwoHopInterference};
use schedulers::{AliceScheduler, HarpScheduler, RandomScheduler, Scheduler};
use workloads::{Mesh, TopologyConfig};

#[test]
fn analysis_bound_dominates_simulated_latency() {
    // On a loss-free network with per-task dedicated cells, every simulated
    // latency must sit within [best_case, worst_case] of the analysis.
    let config = SlotframeConfig::paper_default();
    for seed in 0..5 {
        let tree = TopologyConfig {
            nodes: 20,
            layers: 4,
            max_children: 5,
        }
        .generate(seed);
        let rate = Rate::per_slotframe(1);
        let reqs = workloads::aggregated_echo_requirements(&tree, rate);
        let mut net =
            HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
        net.run_static().unwrap();
        let schedule = net.schedule().clone();

        let tasks = workloads::echo_task_per_node(&tree, rate);
        let mut builder = SimulatorBuilder::new(tree.clone(), config).schedule(schedule.clone());
        for t in &tasks {
            builder = builder.task(t.clone()).unwrap();
        }
        let mut sim = builder.build();
        sim.run_slotframes(12);

        for task in &tasks {
            let bound = latency_bound(&schedule, &tree, task).unwrap();
            for latency in sim.stats().latencies_of(task.source) {
                assert!(
                    latency <= bound.worst_case_slots,
                    "seed {seed}: {} took {latency} > bound {}",
                    task.source,
                    bound.worst_case_slots
                );
                assert!(
                    latency >= bound.best_case_slots,
                    "seed {seed}: {} took {latency} < best case {}",
                    task.source,
                    bound.best_case_slots
                );
            }
        }
    }
}

#[test]
fn harp_static_schedules_are_deadline_schedulable_within_two_frames() {
    let config = SlotframeConfig::paper_default();
    let tree = workloads::testbed_50_node_tree();
    let rate = Rate::per_slotframe(1);
    let reqs = workloads::aggregated_echo_requirements(&tree, rate);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();

    let deadline = 2 * u64::from(config.slots);
    let tasks: Vec<DeadlineTask> = workloads::echo_task_per_node(&tree, rate)
        .into_iter()
        .map(|task| DeadlineTask {
            task,
            deadline_slots: deadline,
        })
        .collect();
    let reports = check_deadlines(net.schedule(), &tree, &tasks).unwrap();
    for r in &reports {
        assert!(
            r.is_schedulable(),
            "{} misses: worst case {} > {}",
            r.source,
            r.worst_case_slots,
            r.deadline_slots
        );
    }
}

#[test]
fn harp_on_mesh_topologies_stays_collision_free_under_real_interference() {
    let config = SlotframeConfig::paper_default();
    for seed in 0..5 {
        let mesh = Mesh::random_geometric(40, 0.28, seed);
        let (tree, extra) = mesh.routing_tree();
        let reqs = workloads::uniform_uplink_requirements(&tree, 2);
        let model = TwoHopInterference::with_extra_edges(extra.iter().copied());

        // HARP: exclusive cells → zero collisions under ANY interference.
        let harp = HarpScheduler::default().build_schedule(&tree, &reqs, config, seed);
        let report = harp.collision_report(&tree, &model);
        assert_eq!(report.colliding_assignments, 0, "seed {seed}");

        // The baselines get strictly worse when radio edges beyond the tree
        // are taken into account.
        for s in [&RandomScheduler as &dyn Scheduler, &AliceScheduler] {
            let schedule = s.build_schedule(&tree, &reqs, config, seed);
            let tree_only = schedule
                .collision_report(&tree, &TwoHopInterference::from_tree(&tree))
                .colliding_assignments;
            let with_mesh = schedule
                .collision_report(&tree, &model)
                .colliding_assignments;
            assert!(
                with_mesh >= tree_only,
                "{}: mesh interference cannot reduce collisions",
                s.name()
            );
        }
    }
}

#[test]
fn mesh_deployment_runs_end_to_end() {
    // Full pipeline on a mesh: decompose, partition, simulate with the mesh
    // interference model — every packet arrives, zero collisions.
    let config = SlotframeConfig::paper_default();
    let mesh = Mesh::random_geometric(30, 0.3, 42);
    let (tree, extra) = mesh.routing_tree();
    let rate = Rate::per_slotframe(1);
    let reqs = workloads::aggregated_echo_requirements(&tree, rate);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();

    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(net.schedule().clone())
        .interference(Box::new(TwoHopInterference::with_extra_edges(extra)));
    for (i, v) in tree.nodes().skip(1).enumerate() {
        builder = builder.task(Task::echo(TaskId(i as u32), v, rate)).unwrap();
    }
    let mut sim = builder.build();
    sim.run_slotframes(10);
    assert_eq!(sim.stats().collisions, 0);
    assert_eq!(sim.stats().deliveries.len() as u64, sim.stats().generated);
}
