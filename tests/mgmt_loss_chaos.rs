//! Chaos tests of the control-plane transport: the static phase must
//! converge to the *same* collision-free schedule whether management frames
//! travel an ideal channel, a lossy one (CoAP-style retransmissions doing
//! the repair), or an adversarial one that also duplicates and delays.
//! Everything is seeded, so each scenario is exactly reproducible.

use harp::core::{unsatisfied_links, HarpNetwork, SchedulingPolicy};
use harp::sim::{Cell, Chaos, Link, Lossy, SlotframeConfig, Transport};
use workloads::{uniform_link_requirements, TopologyConfig};

const TOPOLOGIES: usize = 20;

fn schedule_key(net: &HarpNetwork) -> Vec<(Link, Vec<Cell>)> {
    net.schedule()
        .iter_links()
        .map(|(l, c)| (l, c.to_vec()))
        .collect()
}

fn run_static_with(
    tree: &harp::sim::Tree,
    config: SlotframeConfig,
    transport: Box<dyn Transport>,
) -> HarpNetwork {
    let reqs = uniform_link_requirements(tree, 1);
    let mut net = HarpNetwork::with_transport(
        tree.clone(),
        config,
        &reqs,
        SchedulingPolicy::RateMonotonic,
        transport,
    );
    net.run_static().unwrap();
    assert!(net.quiescent());
    net
}

#[test]
fn lossy_transport_converges_to_the_reliable_schedule() {
    let config = SlotframeConfig::paper_default();
    let trees = TopologyConfig::paper_50_node().generate_batch(0xB5, TOPOLOGIES);
    let mut total_retransmissions = 0u64;
    let mut total_dropped = 0u64;
    for (i, tree) in trees.iter().enumerate() {
        let seed = 0x51ED_u64.wrapping_add(i as u64);
        let reqs = uniform_link_requirements(tree, 1);
        let mut reliable =
            HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
        reliable.run_static().unwrap();

        let net = run_static_with(tree, config, Box::new(Lossy::uniform(0.85, seed).unwrap()));
        assert_eq!(
            schedule_key(&net),
            schedule_key(&reliable),
            "topology {i}: lossy run produced a different schedule"
        );
        assert!(net.schedule().is_exclusive());
        assert!(unsatisfied_links(tree, &reqs, net.schedule()).is_empty());
        let report = net.report().clone();
        total_retransmissions += report.retransmissions;
        total_dropped += report.dropped;

        // Same seed ⇒ same trace: identical report, counters and schedule.
        let again = run_static_with(tree, config, Box::new(Lossy::uniform(0.85, seed).unwrap()));
        assert_eq!(again.report(), &report, "topology {i}: non-deterministic");
        assert_eq!(
            again.transport_stats(),
            net.transport_stats(),
            "topology {i}: transport counters diverged between identical runs"
        );
        assert_eq!(schedule_key(&again), schedule_key(&net));
    }
    // At 85% per-hop PDR across 20 × 50-node static phases, losses (and the
    // retransmissions repairing them) must actually have occurred.
    assert!(total_dropped > 0, "loss model never dropped a frame");
    assert!(total_retransmissions > 0, "no retransmission was exercised");
}

#[test]
fn chaos_transport_with_drops_duplicates_and_delays_still_converges() {
    let config = SlotframeConfig::paper_default();
    let trees = TopologyConfig::paper_50_node().generate_batch(0xC4A0, TOPOLOGIES);
    let mut total_suppressed = 0u64;
    let mut total_retransmissions = 0u64;
    for (i, tree) in trees.iter().enumerate() {
        let seed = 0xD1CE_u64.wrapping_add(i as u64);
        let reqs = uniform_link_requirements(tree, 1);
        let mut reliable =
            HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
        reliable.run_static().unwrap();

        let chaos = || Box::new(Chaos::new(seed, 0.10, 0.15, 0.20, 7));
        let net = run_static_with(tree, config, chaos());
        assert_eq!(
            schedule_key(&net),
            schedule_key(&reliable),
            "topology {i}: chaos run produced a different schedule"
        );
        assert!(net.schedule().is_exclusive());
        assert!(unsatisfied_links(tree, &reqs, net.schedule()).is_empty());
        let stats = net.transport_stats();
        total_suppressed += stats.duplicates_suppressed;
        total_retransmissions += stats.retransmissions;

        let again = run_static_with(tree, config, chaos());
        assert_eq!(
            again.report(),
            net.report(),
            "topology {i}: non-deterministic"
        );
        assert_eq!(again.transport_stats(), stats);
    }
    assert!(
        total_suppressed > 0,
        "duplicate suppression was never exercised"
    );
    assert!(total_retransmissions > 0);
}
