//! The complete footnote-1 extension: a multi-gateway mesh is decomposed
//! into a forest, each tree runs HARP inside its own channel band, and the
//! combined deployment is collision-free across network boundaries.

use harp::core::{BandPlan, HarpNetwork, SchedulingPolicy};
use harp::sim::{Cell, Link, SlotframeConfig};
use workloads::Mesh;

#[test]
fn forest_plus_bands_is_globally_collision_free() {
    let base = SlotframeConfig::paper_default();
    let mesh = Mesh::random_geometric(60, 0.25, 99);
    let gateways = [
        harp::sim::NodeId(0),
        harp::sim::NodeId(1),
        harp::sim::NodeId(2),
    ];
    let forest = mesh.routing_forest(&gateways);
    assert_eq!(forest.len(), 3);

    // Channel bands sized by tree population.
    let widths: Vec<u16> = forest
        .iter()
        .map(|t| ((t.tree.len() * 16) / mesh.len()).max(2) as u16)
        .collect();
    let plan = BandPlan::allocate(&widths, base.channels).expect("bands fit 16 channels");

    // Each tree runs its own distributed HARP inside its band.
    let mut lifted = Vec::new();
    for (i, ft) in forest.iter().enumerate() {
        let cfg = plan.network_config(i, base).unwrap();
        let reqs = workloads::uniform_uplink_requirements(&ft.tree, 1);
        let mut net =
            HarpNetwork::new(ft.tree.clone(), cfg, &reqs, SchedulingPolicy::RateMonotonic);
        net.run_static().unwrap_or_else(|e| panic!("tree {i}: {e}"));
        assert!(
            net.schedule().is_exclusive(),
            "tree {i} internally exclusive"
        );
        lifted.push(plan.lift_schedule(i, net.schedule(), base).unwrap());
    }

    // Across networks: no cell is claimed twice. (Links of different trees
    // share local ids, so compare raw cell sets.)
    let mut used = std::collections::BTreeSet::<Cell>::new();
    for (i, schedule) in lifted.iter().enumerate() {
        for (_, cells) in schedule.iter_links() {
            for &cell in cells {
                assert!(
                    used.insert(cell),
                    "cell {cell} shared by network {i} and an earlier one"
                );
            }
        }
    }

    // Every link of every tree is served.
    for (i, ft) in forest.iter().enumerate() {
        for v in ft.tree.nodes().skip(1) {
            assert_eq!(
                lifted[i].cells_of(Link::up(v)).len(),
                1,
                "tree {i} link {v} uplink"
            );
        }
    }
}

#[test]
fn band_adjustment_ripples_into_reallocation() {
    // One network's demand doubles: its band grows, it re-runs HARP in the
    // wider band, and the combined deployment is still conflict-free.
    let base = SlotframeConfig::paper_default();
    let mesh = Mesh::random_geometric(40, 0.3, 5);
    let gateways = [harp::sim::NodeId(0), harp::sim::NodeId(3)];
    let forest = mesh.routing_forest(&gateways);
    let mut plan = BandPlan::allocate(&[6, 6], base.channels).unwrap();

    let build = |plan: &BandPlan, i: usize, rate: u32| {
        let cfg = plan.network_config(i, base).unwrap();
        let reqs = workloads::uniform_uplink_requirements(&forest[i].tree, rate);
        let mut net = HarpNetwork::new(
            forest[i].tree.clone(),
            cfg,
            &reqs,
            SchedulingPolicy::RateMonotonic,
        );
        net.run_static().unwrap();
        plan.lift_schedule(i, net.schedule(), base).unwrap()
    };

    let _before_0 = build(&plan, 0, 1);
    let moved = plan.adjust(1, 10).unwrap();
    assert!(plan.is_isolated());
    assert!(moved.contains(&1));

    // Rebuild every moved network; unmoved ones keep their schedules.
    let after_0 = build(&plan, 0, 1);
    let after_1 = build(&plan, 1, 3);
    let mut used = std::collections::BTreeSet::<Cell>::new();
    for schedule in [&after_0, &after_1] {
        for (_, cells) in schedule.iter_links() {
            for &cell in cells {
                assert!(used.insert(cell), "cross-network conflict at {cell}");
            }
        }
    }
}
