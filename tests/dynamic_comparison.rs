//! HARP vs adaptive MSF under the same traffic surge — the dynamic
//! trade-off the paper's two experiments show from opposite sides:
//! MSF adapts with trivially few packets but its uncoordinated cells
//! collide; HARP spends a few management messages and never collides.

use harp::core::{HarpNetwork, SchedulingPolicy};
use harp::sim::{
    GlobalInterference, Link, NodeId, Rate, SimulatorBuilder, SlotframeConfig, Task, TaskId,
};
use schedulers::MsfAdaptiveNetwork;

/// The shared scenario: a 50-node network where one deep node's rate jumps
/// from 1 to 4 packets per slotframe.
fn scenario() -> (tsch_sim::Tree, NodeId) {
    let tree = workloads::testbed_50_node_tree();
    let surging = tree.nodes_at_depth(4)[0];
    (tree, surging)
}

#[test]
fn harp_absorbs_surge_without_collisions() {
    let (tree, surging) = scenario();
    let config = SlotframeConfig::paper_default();
    let reqs = workloads::uniform_link_requirements(&tree, 1);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();
    // The surge raises demand on every link of the node's uplink path.
    let mut total_msgs = 0;
    for hop in tree.path_to_root(surging).windows(2) {
        let report = net
            .adjust_and_settle(net.now(), Link::up(hop[0]), 4)
            .unwrap();
        total_msgs += report.mgmt_messages;
    }

    // Drive the data plane with the surged traffic on the final schedule.
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(net.schedule().clone())
        .interference(Box::new(GlobalInterference));
    builder = builder
        .task(Task::uplink(TaskId(0), surging, Rate::per_slotframe(4)))
        .unwrap();
    let mut sim = builder.build();
    sim.run_slotframes(20);
    // Drain the in-flight tail (adjusted partitions lose the compliant
    // ordering, so a packet may span two frames).
    sim.set_task_rate(TaskId(0), Rate::per_slotframe(0))
        .unwrap();
    sim.run_slotframes(4);

    assert_eq!(sim.stats().collisions, 0, "HARP never collides");
    assert_eq!(sim.stats().deliveries.len() as u64, sim.stats().generated);
    assert!(total_msgs >= 2, "the surge escalates at least one hop");
    assert!(total_msgs <= 120, "but stays far from a full rebuild");
}

#[test]
fn msf_adapts_cheaply_but_collides() {
    let (tree, surging) = scenario();
    let config = SlotframeConfig::paper_default();
    // Background: one low-rate task per node keeps every autonomous cell
    // lightly used; the surge pushes one path into adaptation.
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .interference(Box::new(GlobalInterference))
        .seed(3);
    for (id, v) in tree.nodes().skip(1).enumerate() {
        let rate = if v == surging {
            Rate::per_slotframe(4)
        } else {
            Rate::new(1, 2).unwrap()
        };
        builder = builder
            .task(Task::uplink(TaskId(id as u32), v, rate))
            .unwrap();
    }
    let mut sim = builder.build();
    let mut msf = MsfAdaptiveNetwork::bootstrap(&tree, &mut sim);

    for _ in 0..12 {
        sim.run_slotframes(4);
        msf.observe_and_adapt(&mut sim, 4);
    }

    // MSF reacted: the surging path grew beyond its bootstrap cell.
    assert!(
        msf.cells_of(Link::up(surging)) > 1,
        "adaptation must add cells on the surging link"
    );
    // The price: uncoordinated cells collide somewhere in the network.
    assert!(
        sim.stats().collisions > 0,
        "autonomous cells collide under load"
    );
    // And the signalling really is flat: two packets per change.
    assert!(msf.sixtop_packets().is_multiple_of(2));
}
