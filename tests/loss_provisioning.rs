//! Integration test for loss-aware provisioning: with demands inflated by
//! the inverse PDR, a lossy network with retransmissions keeps its queues
//! and latencies bounded — the regime the exact-fit allocation cannot
//! sustain (see the Fig. 9 modelling note in EXPERIMENTS.md).

use harp::core::{HarpNetwork, SchedulingPolicy};
use harp::sim::{LinkQuality, Rate, SimulatorBuilder, SlotframeConfig};

fn run(minutes_of_frames: u64, provision: bool) -> (f64, u64) {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let rate = Rate::per_slotframe(1);
    let quality = LinkQuality::uniform(0.95).unwrap();

    let base = workloads::aggregated_echo_requirements(&tree, rate);
    let reqs = if provision {
        base.provisioned_for_loss(&quality)
    } else {
        base
    };

    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();

    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(net.schedule().clone())
        .quality(quality)
        .max_retries(8)
        .seed(0x1055);
    for task in workloads::echo_task_per_node(&tree, rate) {
        builder = builder.task(task).unwrap();
    }
    let mut sim = builder.build();
    sim.run_slotframes(minutes_of_frames);

    // Deepest node's mean latency in slotframes, plus total queued backlog.
    let deep = tsch_sim::NodeId(49);
    let summary = sim.stats().latency_summary(deep);
    let mean_frames = summary.mean / f64::from(config.slots);
    (mean_frames, sim.queued_packets() as u64)
}

#[test]
fn provisioning_keeps_lossy_network_stable() {
    let frames = 150;
    let (provisioned_latency, provisioned_backlog) = run(frames, true);
    let (exact_latency, exact_backlog) = run(frames, false);

    // With ceil(r/PDR) capacity, retransmissions are absorbed: the deepest
    // node's mean latency stays within a few slotframes and the network
    // carries (almost) no standing backlog.
    assert!(
        provisioned_latency < 4.0,
        "provisioned mean latency {provisioned_latency} frames"
    );
    assert!(
        provisioned_backlog < 30,
        "provisioned backlog {provisioned_backlog} packets"
    );

    // Exact-fit allocation under the same loss accumulates queueing: the
    // provisioned deployment is strictly healthier on both axes.
    assert!(
        provisioned_latency < exact_latency,
        "provisioned {provisioned_latency} vs exact {exact_latency}"
    );
    assert!(provisioned_backlog <= exact_backlog);
}
