//! End-to-end integration tests spanning every crate: workload generation →
//! HARP partitioning (centralized and distributed) → data-plane simulation.

use harp::core::{
    allocate_partitions, build_interfaces, generate_schedule, unsatisfied_links, HarpNetwork,
    Requirements, SchedulingPolicy,
};
use harp::sim::{
    Direction, GlobalInterference, Link, Rate, SimulatorBuilder, SlotframeConfig, Tree,
};
use workloads::TopologyConfig;

fn centralized_schedule(
    tree: &Tree,
    reqs: &Requirements,
    config: SlotframeConfig,
) -> harp::sim::NetworkSchedule {
    let up = build_interfaces(tree, reqs, Direction::Up, config.channels).unwrap();
    let down = build_interfaces(tree, reqs, Direction::Down, config.channels).unwrap();
    let table = allocate_partitions(tree, &up, &down, config).unwrap();
    generate_schedule(tree, reqs, &table, SchedulingPolicy::RateMonotonic).unwrap()
}

#[test]
fn harp_is_collision_free_on_many_random_topologies() {
    let config = SlotframeConfig::paper_default();
    for seed in 0..25 {
        let tree = TopologyConfig::paper_50_node().generate(seed);
        let reqs = workloads::uniform_uplink_requirements(&tree, 2);
        let schedule = centralized_schedule(&tree, &reqs, config);
        assert!(schedule.is_exclusive(), "seed {seed}");
        assert!(
            unsatisfied_links(&tree, &reqs, &schedule).is_empty(),
            "seed {seed}"
        );
        let report = schedule.collision_report(&tree, &GlobalInterference);
        assert_eq!(report.colliding_assignments, 0, "seed {seed}");
    }
}

#[test]
fn distributed_run_matches_centralized_oracle_on_random_topologies() {
    let config = SlotframeConfig::paper_default();
    for seed in 0..10 {
        let tree = TopologyConfig {
            nodes: 30,
            layers: 4,
            max_children: 6,
        }
        .generate(seed);
        let reqs = workloads::aggregated_echo_requirements(&tree, Rate::per_slotframe(1));
        let centralized = centralized_schedule(&tree, &reqs, config);

        let mut net =
            HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
        net.run_static().unwrap();
        // The paper validates that testbed partitions are identical with the
        // simulation's: every link must hold exactly the same cells.
        for direction in Direction::BOTH {
            for link in tree.links(direction) {
                assert_eq!(
                    net.schedule().cells_of(link),
                    centralized.cells_of(link),
                    "seed {seed}, {link}"
                );
            }
        }
    }
}

#[test]
fn harp_schedule_delivers_all_packets_within_two_slotframes() {
    let config = SlotframeConfig::paper_default();
    let tree = workloads::testbed_50_node_tree();
    let rate = Rate::per_slotframe(1);
    let reqs = workloads::aggregated_echo_requirements(&tree, rate);
    let schedule = centralized_schedule(&tree, &reqs, config);

    let mut builder = SimulatorBuilder::new(tree.clone(), config).schedule(schedule);
    for task in workloads::echo_task_per_node(&tree, rate) {
        builder = builder.task(task).unwrap();
    }
    let mut sim = builder.build();
    sim.run_slotframes(20);

    let stats = sim.stats();
    assert_eq!(stats.collisions, 0, "HARP schedules never collide");
    assert_eq!(stats.queue_drops, 0);
    assert_eq!(stats.deliveries.len() as u64, stats.generated);
    let bound = 2 * u64::from(config.slots);
    for d in &stats.deliveries {
        assert!(
            d.latency_slots() <= bound,
            "packet from {} took {} slots",
            d.source,
            d.latency_slots()
        );
    }
}

#[test]
fn adjustment_storm_preserves_every_invariant() {
    let config = SlotframeConfig::paper_default();
    let tree = TopologyConfig::paper_50_node().generate(3);
    let reqs = workloads::uniform_link_requirements(&tree, 1);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();

    let mut expected = reqs.clone();
    let mut rng = harp::sim::SplitMix64::new(42);
    let non_root: Vec<_> = tree.nodes().skip(1).collect();
    for step in 0..60 {
        let child = non_root[rng.next_below(non_root.len() as u64) as usize];
        let direction = if rng.chance(0.5) {
            Direction::Up
        } else {
            Direction::Down
        };
        let cells = 1 + rng.next_below(3) as u32;
        let link = Link { child, direction };
        net.adjust_and_settle(net.now(), link, cells)
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        expected.set(link, cells);
        assert!(net.schedule().is_exclusive(), "step {step}");
        assert!(
            unsatisfied_links(&tree, &expected, net.schedule()).is_empty(),
            "step {step}"
        );
    }
}

#[test]
fn harp_dominates_every_baseline_on_collisions() {
    use schedulers::{HarpScheduler, LdsfScheduler, MsfScheduler, RandomScheduler, Scheduler};
    let config = SlotframeConfig::paper_default();
    let topologies = TopologyConfig::paper_50_node().generate_batch(100, 10);
    for rate in [2u32, 4] {
        let baselines: [&dyn Scheduler; 3] = [&RandomScheduler, &MsfScheduler, &LdsfScheduler];
        let harp = harp_bench_proxy(&HarpScheduler::default(), &topologies, rate, config);
        for b in baselines {
            let p = harp_bench_proxy(b, &topologies, rate, config);
            assert!(harp <= p, "harp {harp} vs {} {p} at rate {rate}", b.name());
        }
        assert_eq!(harp, 0.0, "within capacity HARP never collides");
    }
}

/// Local re-implementation of the Fig. 11 inner loop (the bench crate is
/// not a dependency of the meta-crate).
fn harp_bench_proxy(
    scheduler: &dyn schedulers::Scheduler,
    topologies: &[Tree],
    rate: u32,
    config: SlotframeConfig,
) -> f64 {
    let mut sum = 0.0;
    for (i, tree) in topologies.iter().enumerate() {
        let reqs = workloads::uniform_uplink_requirements(tree, rate);
        let schedule = scheduler.build_schedule(tree, &reqs, config, i as u64);
        sum += schedule
            .collision_report(tree, &GlobalInterference)
            .collision_probability();
    }
    sum / topologies.len() as f64
}

#[test]
fn gateway_level_changes_are_absorbed() {
    // Raising demand at layer 1 exercises the gateway's slotframe-level
    // adjustment (no parent to escalate to).
    let config = SlotframeConfig::paper_default();
    let tree = workloads::testbed_50_node_tree();
    let reqs = workloads::uniform_link_requirements(&tree, 1);
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();
    for (node, cells) in [(1u32, 5u32), (2, 7), (3, 4), (4, 9)] {
        let link = Link::up(harp::sim::NodeId(node));
        net.adjust_and_settle(net.now(), link, cells).unwrap();
        assert!(net.schedule().is_exclusive());
        assert_eq!(net.schedule().cells_of(link).len(), cells as usize);
    }
}
