//! Chaos test of the lockstep path: the data plane runs continuously while
//! random traffic changes stream through the control plane. At no instant —
//! including mid-adjustment, while partitions move and cell assignments are
//! in flight — may a single transmission collide.

use harp::core::{apply_op, HarpNetwork, SchedulingPolicy};
use harp::sim::{Asn, Direction, Link, NodeId, Rate, SimulatorBuilder, SlotframeConfig};

#[test]
fn continuous_operation_under_random_changes_never_collides() {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let reqs = workloads::uniform_link_requirements(&tree, 1);

    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static().unwrap();
    let net_offset = net.now().0;

    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(net.schedule().clone())
        .seed(7);
    // Light background traffic so the data plane is active throughout.
    for (i, v) in tree.nodes().skip(1).enumerate().take(10) {
        builder = builder
            .task(harp::sim::Task::uplink(
                harp::sim::TaskId(i as u32),
                v,
                Rate::new(1, 4).unwrap(),
            ))
            .unwrap();
    }
    let mut sim = builder.build();

    let mut rng = harp::sim::SplitMix64::new(0xC0A5);
    let frames = 60u64;
    for frame in 0..frames {
        // Roughly every four frames, inject a random change mid-frame.
        if frame % 4 == 1 {
            let node = NodeId(1 + rng.next_below(49) as u32);
            let direction = if rng.chance(0.5) {
                Direction::Up
            } else {
                Direction::Down
            };
            let cells = 1 + rng.next_below(3) as u32;
            let at = Asn(sim.now().0 + net_offset);
            let ops = net
                .request_change(
                    at,
                    Link {
                        child: node,
                        direction,
                    },
                    cells,
                )
                .unwrap_or_else(|e| panic!("frame {frame}: {e}"));
            for op in &ops {
                apply_op(sim.schedule_mut(), op).unwrap();
            }
        }
        // Advance both planes one slotframe, slot by slot.
        for _ in 0..config.slots {
            sim.step_slot();
            let ops = net.step(Asn(sim.now().0 + net_offset)).unwrap();
            for op in &ops {
                apply_op(sim.schedule_mut(), op).unwrap();
            }
            // The invariant, checked every single slot.
            assert_eq!(
                sim.stats().collisions,
                0,
                "collision at ASN {} (frame {frame})",
                sim.now()
            );
        }
    }
    // Sanity: traffic actually flowed and changes actually happened.
    assert!(
        sim.stats().deliveries.len() as u64 > frames,
        "data plane was active"
    );
    assert!(net.quiescent(), "all adjustments settled");
    assert!(sim.schedule().is_exclusive());
}
