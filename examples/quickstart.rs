//! Quickstart: partition a small industrial network with HARP and watch a
//! traffic change get absorbed.
//!
//! Run with `cargo run --example quickstart`.

use harp::core::{HarpNetwork, Requirements, SchedulingPolicy};
use harp::sim::{Direction, Link, NodeId, SlotframeConfig, Tree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 12-node, 3-layer network of the paper's Fig. 1.
    let tree = Tree::paper_fig1_example();
    println!("network: {} nodes, {} layers", tree.len(), tree.layers());

    // One cell per uplink and downlink for every node's subtree traffic
    // (the testbed's demand model: a parent forwards its whole subtree).
    let mut reqs = Requirements::new();
    for v in tree.nodes().skip(1) {
        reqs.set(Link::up(v), tree.subtree_size(v));
        reqs.set(Link::down(v), tree.subtree_size(v));
    }

    // Deploy HARP: one state machine per device, a management plane with
    // realistic per-hop timing, and run the static partition allocation.
    let mut net = HarpNetwork::new(
        tree.clone(),
        SlotframeConfig::paper_default(),
        &reqs,
        SchedulingPolicy::RateMonotonic,
    );
    let report = net.run_static()?;
    println!(
        "static phase: {} management messages, {:.2} s, schedule exclusive: {}",
        report.mgmt_messages,
        report.elapsed_seconds(net.config()),
        net.schedule().is_exclusive()
    );

    // Inspect the hierarchy: every non-leaf node got a dedicated row.
    for v in tree.nodes() {
        if tree.is_leaf(v) {
            continue;
        }
        let row = net
            .node(v)
            .partition(Direction::Up, tree.link_layer(v))
            .expect("allocated");
        println!(
            "  {v}: uplink scheduling row at slots {}..{} channel {}",
            row.left(),
            row.right(),
            row.bottom()
        );
    }

    // A traffic change: link 9 -> 7 suddenly needs 3 cells instead of 1.
    let adj = net.adjust_and_settle(net.now(), Link::up(NodeId(9)), 3)?;
    println!(
        "adjustment: {} management messages, {} nodes involved, {:.2} s",
        adj.mgmt_messages,
        adj.involved_nodes.len(),
        adj.elapsed_seconds(net.config())
    );
    assert!(net.schedule().is_exclusive(), "still collision-free");
    println!(
        "link N9:up now holds {} cells — done",
        net.schedule().cells_of(Link::up(NodeId(9))).len()
    );
    Ok(())
}
