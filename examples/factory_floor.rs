//! A process-control plant: mixed-criticality sensor/actuator loops over a
//! HARP-managed wireless network.
//!
//! Three task classes share the network, as the paper's introduction
//! motivates (chemical process control): fast pressure-control loops close
//! to the gateway, medium flow-control loops mid-tree, and slow temperature
//! telemetry at the leaves. HARP provisions each link for its aggregate
//! demand; the example verifies per-class latencies on the data plane.
//!
//! Run with `cargo run --example factory_floor`.

use harp::core::{check_deadlines, DeadlineTask, HarpNetwork, Requirements, SchedulingPolicy};
use harp::sim::{LinkQuality, NodeId, Rate, SimulatorBuilder, SlotframeConfig, Task, TaskId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();

    // Task classes: (sources, rate, label).
    let fast: Vec<NodeId> = tree.nodes_at_depth(1); // pressure loops
    let medium: Vec<NodeId> = tree.nodes_at_depth(3); // flow loops
    let slow: Vec<NodeId> = tree.nodes_at_depth(5); // temperature telemetry
    let mut tasks: Vec<Task> = Vec::new();
    let mut next_id = 0u32;
    let mut add_tasks = |sources: &[NodeId], rate: Rate, tasks: &mut Vec<Task>| {
        for &s in sources {
            tasks.push(Task::echo(TaskId(next_id), s, rate));
            next_id += 1;
        }
    };
    add_tasks(&fast, Rate::per_slotframe(2), &mut tasks);
    add_tasks(&medium, Rate::per_slotframe(1), &mut tasks);
    add_tasks(&slow, Rate::new(1, 4)?, &mut tasks);

    let reqs = Requirements::from_tasks(&tree, &tasks);
    println!(
        "plant: {} control loops ({} fast, {} medium, {} slow telemetry)",
        tasks.len(),
        fast.len(),
        medium.len(),
        slow.len()
    );

    // HARP static phase.
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    let report = net.run_static()?;
    println!(
        "HARP converged in {:.2} s with {} management messages; collision-free: {}",
        report.elapsed_seconds(config),
        report.mgmt_messages,
        net.schedule().is_exclusive()
    );

    // Data plane: 100 slotframes with mild interference.
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(net.schedule().clone())
        .quality(LinkQuality::uniform(0.995)?)
        .max_retries(0)
        .seed(0xFAC);
    for task in &tasks {
        builder = builder.task(task.clone())?;
    }
    let mut sim = builder.build();
    sim.run_slotframes(100);

    let stats = sim.stats();
    println!(
        "\ndata plane: {} packets generated, {} delivered ({:.2}% loss), 0 collisions: {}",
        stats.generated,
        stats.deliveries.len(),
        (1.0 - stats.delivery_ratio()) * 100.0,
        stats.collisions == 0
    );

    // Analytic admission check: compare each class's worst-case bound with
    // its loop deadline (the measured latencies must sit below the bound).
    let slot_s = f64::from(config.slot_duration_us) / 1e6;
    let deadline_tasks: Vec<DeadlineTask> = tasks
        .iter()
        .map(|t| {
            let deadline_s = if fast.contains(&t.source) {
                2.0
            } else if medium.contains(&t.source) {
                4.0
            } else {
                8.0
            };
            DeadlineTask {
                task: t.clone(),
                deadline_slots: (deadline_s / slot_s) as u64,
            }
        })
        .collect();
    let verdicts = check_deadlines(net.schedule(), &tree, &deadline_tasks)?;
    let analytic_misses = verdicts.iter().filter(|v| !v.is_schedulable()).count();
    println!(
        "analytic admission: {} of {} loops provably meet their deadlines",
        verdicts.len() - analytic_misses,
        verdicts.len()
    );

    for (label, sources, deadline_s) in [
        ("fast pressure loops ", &fast, 2.0),
        ("medium flow loops   ", &medium, 4.0),
        ("slow temperature    ", &slow, 8.0),
    ] {
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        let mut n = 0usize;
        for &s in sources.iter() {
            let summary = stats.latency_summary(s);
            if summary.count > 0 {
                worst = worst.max(summary.max as f64 * slot_s);
                sum += summary.mean * slot_s;
                n += 1;
            }
        }
        let mean = if n > 0 { sum / n as f64 } else { 0.0 };
        println!(
            "  {label} mean {:.2} s, worst {:.2} s (loop deadline {:.0} s): {}",
            mean,
            worst,
            deadline_s,
            if worst <= deadline_s { "MET" } else { "MISSED" }
        );
    }
    Ok(())
}
