//! Renders the hierarchically partitioned slotframe of the 50-node testbed
//! network as ASCII art — the reproduction of the paper's Fig. 7(d).
//!
//! Each cell of the (slot × channel) grid shows which node's scheduling row
//! occupies it; `.` cells are idle (available to the Management sub-frame).
//!
//! Run with `cargo run --example partition_layout`.

use harp::core::{
    allocate_partitions, build_interfaces, generate_schedule, render_cell_map,
    render_super_partitions, render_utilization, SchedulingPolicy,
};
use harp::sim::{Direction, Link, SlotframeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let reqs = workloads::aggregated_echo_requirements(&tree, harp::sim::Rate::per_slotframe(1));

    let up = build_interfaces(&tree, &reqs, Direction::Up, config.channels)?;
    let down = build_interfaces(&tree, &reqs, Direction::Down, config.channels)?;
    let table = allocate_partitions(&tree, &up, &down, config)?;
    let schedule = generate_schedule(&tree, &reqs, &table, SchedulingPolicy::RateMonotonic)?;
    assert!(schedule.is_exclusive());

    println!("# Fig. 7(d) — partitioned slotframe of the 50-node network");
    println!(
        "# {} slots x {} channels; Data sub-frame uses slots 0..{}; uplink 0..{}, downlink {}..{}",
        config.slots,
        config.channels,
        table.total_slots(),
        table.uplink_slots(),
        table.uplink_slots(),
        table.total_slots(),
    );

    // Top-level partitions (the gateway's per-layer super-partitions).
    println!("\n## Gateway super-partitions");
    print!("{}", render_super_partitions(&tree, &table));

    // Cell-level map of the data sub-frame (wrapped at 100 columns).
    println!("\n## Cell map (owner of each cell; '.' = idle, '#' = conflict)");
    let width = table.total_slots().min(config.slots);
    for chunk_start in (0..width).step_by(100) {
        let chunk_end = (chunk_start + 100).min(width);
        println!("\nslots {chunk_start}..{chunk_end}");
        print!(
            "{}",
            render_cell_map(&tree, &schedule, chunk_start..chunk_end)
        );
    }
    println!("\n{}", render_utilization(&schedule));

    // Sanity: every link received its exact requirement.
    for (link, need) in reqs.iter() {
        assert_eq!(schedule.cells_of(link).len(), need as usize, "{link}");
    }
    let total: usize = schedule.assignment_count();
    println!(
        "\n{total} cells assigned over {} links — all requirements met, zero collisions",
        reqs.iter().count()
    );
    let _ = Link::up(tree.root());
    Ok(())
}
