//! A shift change on the factory floor: a burst of traffic changes sweeps
//! the network and HARP absorbs each one without ever breaking schedule
//! exclusivity.
//!
//! The example raises and lowers demands across all layers — including an
//! infeasible request that HARP must reject cleanly — and prints the
//! adjustment cost of every event.
//!
//! Run with `cargo run --example network_dynamics`.

use harp::core::{HarpError, HarpNetwork, SchedulingPolicy};
use harp::sim::{Link, NodeId, SlotframeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = workloads::testbed_50_node_tree();
    let config = SlotframeConfig::paper_default();
    let reqs = workloads::uniform_link_requirements(&tree, 1);

    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    net.run_static()?;
    println!(
        "static phase done at {:.2} s\n",
        config.slots_to_seconds(net.now().0)
    );

    // A burst of demand changes at different layers, including decreases.
    let events: [(Link, u32, &str); 7] = [
        (Link::up(NodeId(45)), 2, "leaf sensor doubles its rate"),
        (
            Link::up(NodeId(17)),
            3,
            "layer-3 relay aggregates a new sensor",
        ),
        (
            Link::down(NodeId(14)),
            2,
            "actuator at layer 2 gets a new setpoint stream",
        ),
        (Link::up(NodeId(45)), 1, "leaf sensor backs off again"),
        (
            Link::up(NodeId(5)),
            4,
            "layer-2 subtree turns on a camera burst",
        ),
        (
            Link::down(NodeId(33)),
            3,
            "deep actuator joins a control loop",
        ),
        (Link::up(NodeId(1)), 6, "whole east wing ramps up"),
    ];

    println!(
        "{:<46} {:>5} {:>6} {:>8}",
        "event", "msgs", "nodes", "time(s)"
    );
    for (link, cells, label) in events {
        let report = net.adjust_and_settle(net.now(), link, cells)?;
        assert!(net.schedule().is_exclusive(), "never a collision");
        assert_eq!(net.schedule().cells_of(link).len(), cells as usize);
        println!(
            "{label:<46} {:>5} {:>6} {:>8.2}",
            report.mgmt_messages,
            report.involved_nodes.len(),
            report.elapsed_seconds(config)
        );
    }

    // An impossible demand is rejected without corrupting the network.
    let before = net.schedule().assignment_count();
    match net.adjust_and_settle(net.now(), Link::up(NodeId(45)), 500) {
        Err(HarpError::SlotframeOverflow {
            needed_slots,
            available,
        }) => println!(
            "\ninfeasible request rejected: needs {needed_slots} slots, slotframe has {available}"
        ),
        other => panic!("expected an overflow rejection, got {other:?}"),
    }
    assert!(net.schedule().is_exclusive());
    println!(
        "schedule intact after rejection ({before} assignments) — network still collision-free"
    );

    // A maintenance window: defragment back to the compliant static layout.
    let (refresh_report, links_moved) = net.refresh()?;
    println!(
        "\nmaintenance refresh: {} mgmt messages, {} links re-celled, {:.2} s — compliant again",
        refresh_report.mgmt_messages,
        links_moved,
        refresh_report.elapsed_seconds(config)
    );
    assert!(net.schedule().is_exclusive());
    Ok(())
}
