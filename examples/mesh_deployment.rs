//! Deploying HARP on a real radio mesh: extract the routing tree, keep the
//! non-tree radio links as interference edges, partition, and verify
//! end-to-end deadlines analytically before going live.
//!
//! This exercises two of the paper's future-work extensions implemented in
//! this reproduction: non-tree topologies (footnote 1: decompose into a
//! routing tree) and diverse end-to-end deadlines (§VIII).
//!
//! Run with `cargo run --example mesh_deployment`.

use harp::core::{check_deadlines, DeadlineTask, HarpNetwork, Requirements, SchedulingPolicy};
use harp::sim::{Rate, SimulatorBuilder, SlotframeConfig, Task, TaskId, TwoHopInterference};
use workloads::Mesh;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 45-node plant floor: random geometric radio connectivity.
    let mesh = Mesh::random_geometric(45, 0.28, 2026);
    let (tree, interference_edges) = mesh.routing_tree();
    println!(
        "mesh: {} nodes, {} radio edges -> routing tree of depth {}, {} interference edges",
        mesh.len(),
        mesh.edges().len(),
        tree.layers(),
        interference_edges.len()
    );

    // One echo control loop per node; demand aggregates along the tree.
    let config = SlotframeConfig::paper_default();
    let rate = Rate::per_slotframe(1);
    let tasks: Vec<Task> = tree
        .nodes()
        .skip(1)
        .enumerate()
        .map(|(i, n)| Task::echo(TaskId(i as u32), n, rate))
        .collect();
    let reqs = Requirements::from_tasks(&tree, &tasks);

    // HARP static phase over the extracted tree.
    let mut net = HarpNetwork::new(tree.clone(), config, &reqs, SchedulingPolicy::RateMonotonic);
    let report = net.run_static()?;
    println!(
        "HARP converged: {} mgmt messages in {:.2} s, exclusive: {}",
        report.mgmt_messages,
        report.elapsed_seconds(config),
        net.schedule().is_exclusive()
    );

    // Deadline admission test BEFORE running traffic: every loop must close
    // within two slotframes.
    let deadline = 2 * u64::from(config.slots);
    let deadline_tasks: Vec<DeadlineTask> = tasks
        .iter()
        .map(|task| DeadlineTask {
            task: task.clone(),
            deadline_slots: deadline,
        })
        .collect();
    let verdicts = check_deadlines(net.schedule(), &tree, &deadline_tasks)?;
    let misses: Vec<_> = verdicts.iter().filter(|v| !v.is_schedulable()).collect();
    println!(
        "deadline analysis: {}/{} loops schedulable within {:.2} s{}",
        verdicts.len() - misses.len(),
        verdicts.len(),
        config.slots_to_seconds(deadline),
        if misses.is_empty() {
            " — admitted"
        } else {
            ""
        },
    );
    assert!(
        misses.is_empty(),
        "HARP's compliant layout meets 2-frame deadlines"
    );

    // Go live under the REAL interference graph (mesh edges included) with
    // tracing on: HARP's exclusive cells ignore the extra edges entirely.
    let mut builder = SimulatorBuilder::new(tree.clone(), config)
        .schedule(net.schedule().clone())
        .interference(Box::new(TwoHopInterference::with_extra_edges(
            interference_edges,
        )))
        .trace_capacity(256);
    for task in &tasks {
        builder = builder.task(task.clone())?;
    }
    let mut sim = builder.build();
    sim.run_slotframes(50);
    let stats = sim.stats();
    println!(
        "data plane: {} generated, {} delivered, {} collisions, {} trace failures",
        stats.generated,
        stats.deliveries.len(),
        stats.collisions,
        sim.trace().failures().count()
    );
    assert_eq!(stats.collisions, 0);
    assert_eq!(stats.deliveries.len() as u64, stats.generated);
    println!("all control loops closed on a real mesh — zero collisions");
    Ok(())
}
